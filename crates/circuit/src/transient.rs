//! Transient analysis via backward Euler.
//!
//! Fixed-step implicit integration: unconditionally stable, first-order —
//! entirely adequate for the bit-line discharge and cell-flip waveforms the
//! SRAM analyses need (smooth exponential-ish trajectories, no oscillators).

use crate::dc::{Companion, DcOptions, DcWorkspace, System};
use crate::netlist::{CircuitError, Netlist, NodeId};

/// Options for a transient run.
#[derive(Debug, Clone)]
pub struct TransientOptions {
    /// Fixed time step \[s\].
    pub dt: f64,
    /// Stop time \[s\].
    pub t_stop: f64,
    /// Newton options used inside each time step.
    pub newton: DcOptions,
    /// Initial solver state; when empty, a DC solve provides it.
    pub initial_state: Vec<f64>,
}

impl TransientOptions {
    /// Creates options for a run of `t_stop` seconds at step `dt`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt <= t_stop`.
    pub fn new(dt: f64, t_stop: f64) -> Self {
        assert!(
            dt > 0.0 && dt <= t_stop && dt.is_finite() && t_stop.is_finite(),
            "invalid transient window dt={dt}, t_stop={t_stop}"
        );
        Self {
            dt,
            t_stop,
            newton: DcOptions::default(),
            initial_state: Vec::new(),
        }
    }

    /// Starts the run from an explicit solver state (e.g. a pre-charged
    /// bit-line) instead of the DC operating point.
    pub fn with_initial_state(mut self, state: Vec<f64>) -> Self {
        self.initial_state = state;
        self
    }
}

/// Recorded waveforms of a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    /// One trace per node, indexed like the netlist's nodes (ground at 0).
    traces: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Time points \[s\].
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Waveform of a node \[V\].
    pub fn trace(&self, node: NodeId) -> &[f64] {
        &self.traces[node.index()]
    }

    /// Final value of a node \[V\].
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        *self.traces[node.index()]
            .last()
            .expect("transient produced no samples")
    }

    /// First time the node crosses `level` in the given direction, found by
    /// linear interpolation between samples. `falling = true` looks for a
    /// downward crossing.
    pub fn crossing_time(&self, node: NodeId, level: f64, falling: bool) -> Option<f64> {
        let tr = self.trace(node);
        for i in 1..tr.len() {
            let (a, b) = (tr[i - 1], tr[i]);
            let crossed = if falling {
                a > level && b <= level
            } else {
                a < level && b >= level
            };
            if crossed {
                let frac = (level - a) / (b - a);
                return Some(self.times[i - 1] + frac * (self.times[i] - self.times[i - 1]));
            }
        }
        None
    }
}

/// Runs a backward-Euler transient analysis.
///
/// # Errors
///
/// Fails if the initial DC solve fails or any time step's Newton iteration
/// does not converge.
pub fn solve(netlist: &Netlist, opts: &TransientOptions) -> Result<TransientResult, CircuitError> {
    let sys = System::new(netlist);
    if sys.num_unknowns == 0 {
        return Err(CircuitError::EmptyCircuit);
    }

    let mut state = if opts.initial_state.is_empty() {
        crate::dc::solve(netlist, &opts.newton)?.state().to_vec()
    } else {
        assert_eq!(
            opts.initial_state.len(),
            sys.num_unknowns,
            "initial state length mismatch"
        );
        opts.initial_state.clone()
    };

    let steps = (opts.t_stop / opts.dt).round() as usize;
    let num_nodes = netlist.num_nodes();
    let mut times = Vec::with_capacity(steps + 1);
    let mut traces = vec![Vec::with_capacity(steps + 1); num_nodes];

    let record = |t: f64, state: &[f64], times: &mut Vec<f64>, traces: &mut Vec<Vec<f64>>| {
        times.push(t);
        traces[0].push(0.0);
        for (i, tr) in traces.iter_mut().enumerate().skip(1) {
            tr.push(state[i - 1]);
        }
    };

    record(0.0, &state, &mut times, &mut traces);

    let mut prev = state.clone();
    let mut ws = DcWorkspace::new();
    for k in 1..=steps {
        let companion = Companion {
            dt: opts.dt,
            prev: &prev,
        };
        sys.newton(
            &mut state,
            opts.newton.gmin_final,
            1.0,
            Some(&companion),
            &opts.newton,
            &mut ws,
        )?;
        record(k as f64 * opts.dt, &state, &mut times, &mut traces);
        prev.copy_from_slice(&state);
    }

    Ok(TransientResult { times, traces })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    /// RC discharge: v(t) = V0·e^{-t/RC}.
    #[test]
    fn rc_discharge_matches_analytic() {
        let r = 1e3;
        let c = 1e-9;
        let mut ckt = Netlist::new();
        let a = ckt.node("a");
        ckt.resistor("R", a, Netlist::GROUND, r);
        ckt.capacitor("C", a, Netlist::GROUND, c);
        // Start charged to 1 V with no source holding it.
        let opts = TransientOptions::new(10e-9, 2e-6).with_initial_state(vec![1.0]);
        let res = solve(&ckt, &opts).unwrap();
        let tau = r * c;
        for (&t, &v) in res.times().iter().zip(res.trace(a)) {
            let expected = (-t / tau).exp();
            // Backward Euler is first order: a few percent at dt = tau/100.
            assert!((v - expected).abs() < 0.02, "t={t:e}: v={v} vs {expected}");
        }
    }

    #[test]
    fn rc_charge_through_source() {
        let mut ckt = Netlist::new();
        let src = ckt.node("src");
        let out = ckt.node("out");
        ckt.vsource("V1", src, Netlist::GROUND, 1.0);
        ckt.resistor("R", src, out, 1e3);
        ckt.capacitor("C", out, Netlist::GROUND, 1e-9);
        // Start from everything discharged (cap at 0, source on).
        let opts = TransientOptions::new(5e-9, 5e-6).with_initial_state(vec![1.0, 0.0, 0.0]);
        let res = solve(&ckt, &opts).unwrap();
        // After 5 tau the output has settled at the source voltage.
        assert!((res.final_voltage(out) - 1.0).abs() < 0.01);
        // 63% point reached near t = tau.
        let t63 = res.crossing_time(out, 0.632, false).unwrap();
        assert!((t63 - 1e-6).abs() < 0.1e-6, "t63 = {t63:e}");
    }

    #[test]
    fn crossing_time_directionality() {
        let mut ckt = Netlist::new();
        let a = ckt.node("a");
        ckt.resistor("R", a, Netlist::GROUND, 1e3);
        ckt.capacitor("C", a, Netlist::GROUND, 1e-9);
        let opts = TransientOptions::new(10e-9, 3e-6).with_initial_state(vec![1.0]);
        let res = solve(&ckt, &opts).unwrap();
        // The waveform only falls: no rising crossing of 0.5 exists.
        assert!(res.crossing_time(a, 0.5, true).is_some());
        assert!(res.crossing_time(a, 0.5, false).is_none());
    }

    #[test]
    fn starts_from_dc_when_no_initial_state() {
        let mut ckt = Netlist::new();
        let src = ckt.node("src");
        let out = ckt.node("out");
        ckt.vsource("V1", src, Netlist::GROUND, 1.0);
        ckt.resistor("R", src, out, 1e3);
        ckt.capacitor("C", out, Netlist::GROUND, 1e-12);
        let res = solve(&ckt, &TransientOptions::new(1e-9, 50e-9)).unwrap();
        // Already at equilibrium: flat trace.
        for &v in res.trace(out) {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "invalid transient window")]
    fn rejects_bad_window() {
        let _ = TransientOptions::new(1e-6, 1e-9);
    }
}
