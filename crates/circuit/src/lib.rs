//! A small modified-nodal-analysis circuit simulator.
//!
//! The paper's evaluation rests on HSPICE DC and transient simulations of a
//! 6T SRAM cell. This crate is the substitute: enough of a SPICE to compute
//! everything those analyses need —
//!
//! - **DC operating points** of nonlinear MOSFET circuits via damped
//!   Newton–Raphson with Gmin continuation (read-disturb voltages, inverter
//!   trip points, write margins, hold states),
//! - **DC sweeps** with warm starts (butterfly curves, VTCs),
//! - **transient analysis** via backward Euler (bit-line discharge for
//!   access-time extraction).
//!
//! Circuits here are small (an SRAM cell plus periphery is under twenty
//! nodes), so the solver uses dense LU factorization and per-element
//! numeric derivatives — simple, robust, and fast at this scale.
//!
//! # Example
//!
//! ```
//! use pvtm_circuit::Netlist;
//!
//! // A resistive divider: 1 V across two equal resistors.
//! let mut ckt = Netlist::new();
//! let top = ckt.node("top");
//! let mid = ckt.node("mid");
//! ckt.vsource("V1", top, Netlist::GROUND, 1.0);
//! ckt.resistor("R1", top, mid, 1e3);
//! ckt.resistor("R2", mid, Netlist::GROUND, 1e3);
//! let sol = ckt.solve_dc()?;
//! assert!((sol.voltage(mid) - 0.5).abs() < 1e-6);
//! # Ok::<(), pvtm_circuit::CircuitError>(())
//! ```

pub mod dc;
pub mod linalg;
pub mod netlist;
pub mod parser;
pub(crate) mod rescue;
pub mod template;
pub mod transient;

pub use dc::{DcOptions, DcSolution, DcWorkspace, SolverStats};
pub use netlist::{CircuitError, Element, Netlist, NodeId};
pub use parser::{parse_netlist, ParseError};
pub use template::{CircuitTemplate, MosfetSlot, VsourceSlot};
pub use transient::{TransientOptions, TransientResult};
