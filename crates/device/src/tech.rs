//! Predictive technology cards.
//!
//! The numbers below are *predictive-model-like*, chosen to land in the same
//! regime as the BPTM cards the paper used (70 nm, VDD = 1.0 V, cell
//! transistor off-currents of a few nA, RDF sigma of ~25–35 mV for
//! minimum-geometry devices). Absolute currents are not calibrated against
//! the authors' testbed — the reproduction targets the *shapes* of the
//! paper's figures, which depend on the mechanisms, not the decimal points.

use serde::{Deserialize, Serialize};

use crate::params::{Polarity, TransistorParams};

/// A process technology: supply, geometry floor, reference temperature and
/// one parameter card per device flavour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    name: String,
    node_nm: f64,
    vdd: f64,
    lmin: f64,
    temp_k: f64,
    nmos: TransistorParams,
    pmos: TransistorParams,
}

impl Technology {
    /// Predictive 70 nm card — the node used throughout the paper.
    ///
    /// # Example
    ///
    /// ```
    /// let t = pvtm_device::Technology::predictive_70nm();
    /// assert_eq!(t.vdd(), 1.0);
    /// assert_eq!(t.node_nm(), 70.0);
    /// ```
    pub fn predictive_70nm() -> Self {
        Self {
            name: "predictive-70nm".to_string(),
            node_nm: 70.0,
            vdd: 1.0,
            lmin: 70e-9,
            temp_k: 300.0,
            nmos: TransistorParams {
                vt0: 0.20,
                gamma: 0.30,
                phi_s: 0.88,
                n_sub: 1.40,
                mu_cox: 350e-6,
                lambda: 0.10,
                dibl: 0.045,
                vt_tc: 0.7e-3,
                mu_exp: 1.5,
                jg0: 1.6e5,
                sg: 0.13,
                jbtbt: 3.0e-3,
                cbtbt: 4.0,
                jdiode: 4.0e-11,
                avt: 6.0e-9,
            },
            pmos: TransistorParams {
                vt0: 0.22,
                gamma: 0.28,
                phi_s: 0.88,
                n_sub: 1.42,
                mu_cox: 150e-6,
                lambda: 0.12,
                dibl: 0.040,
                vt_tc: 0.7e-3,
                mu_exp: 1.5,
                jg0: 0.5e5,
                sg: 0.13,
                jbtbt: 2.0e-3,
                cbtbt: 4.0,
                jdiode: 4.0e-11,
                avt: 6.0e-9,
            },
        }
    }

    /// Predictive 90 nm card — slightly higher Vt, lower leakage; included
    /// for node-scaling studies.
    pub fn predictive_90nm() -> Self {
        let mut t = Self::predictive_70nm();
        t.name = "predictive-90nm".to_string();
        t.node_nm = 90.0;
        t.vdd = 1.2;
        t.lmin = 90e-9;
        t.nmos.vt0 = 0.26;
        t.pmos.vt0 = 0.28;
        t.nmos.dibl = 0.030;
        t.pmos.dibl = 0.028;
        t.nmos.jg0 = 4.0e4;
        t.pmos.jg0 = 1.3e4;
        t.nmos.jbtbt = 8.0e-4;
        t.pmos.jbtbt = 5.0e-4;
        t.nmos.avt = 5.0e-9;
        t.pmos.avt = 5.0e-9;
        t
    }

    /// Predictive 45 nm card — lower Vt, thinner oxide, much higher gate and
    /// BTBT leakage, larger RDF. Included for "technology scaling makes this
    /// worse" studies (the paper's motivation section).
    pub fn predictive_45nm() -> Self {
        let mut t = Self::predictive_70nm();
        t.name = "predictive-45nm".to_string();
        t.node_nm = 45.0;
        t.vdd = 0.9;
        t.lmin = 45e-9;
        t.nmos.vt0 = 0.17;
        t.pmos.vt0 = 0.19;
        t.nmos.dibl = 0.070;
        t.pmos.dibl = 0.065;
        t.nmos.jg0 = 6.0e5;
        t.pmos.jg0 = 2.0e5;
        t.nmos.jbtbt = 6.0e-3;
        t.pmos.jbtbt = 4.0e-3;
        t.nmos.avt = 7.0e-9;
        t.pmos.avt = 7.0e-9;
        t
    }

    /// Technology name, e.g. `predictive-70nm`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Feature size in nanometres.
    pub fn node_nm(&self) -> f64 {
        self.node_nm
    }

    /// Nominal supply voltage \[V\].
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Minimum channel length \[m\].
    pub fn lmin(&self) -> f64 {
        self.lmin
    }

    /// Reference temperature \[K\] (27 °C, as in the paper's Fig. 3).
    pub fn temp_k(&self) -> f64 {
        self.temp_k
    }

    /// NMOS parameter card.
    pub fn nmos(&self) -> &TransistorParams {
        &self.nmos
    }

    /// PMOS parameter card.
    pub fn pmos(&self) -> &TransistorParams {
        &self.pmos
    }

    /// Parameter card for the requested polarity.
    pub fn params(&self, polarity: Polarity) -> &TransistorParams {
        match polarity {
            Polarity::Nmos => &self.nmos,
            Polarity::Pmos => &self.pmos,
        }
    }

    /// Returns a copy with a different operating temperature.
    pub fn with_temperature(mut self, temp_k: f64) -> Self {
        assert!(
            temp_k > 0.0 && temp_k.is_finite(),
            "invalid temperature {temp_k} K"
        );
        self.temp_k = temp_k;
        self
    }

    /// Returns a copy with a different supply voltage (used for standby
    /// supply-scaling studies).
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        assert!(vdd > 0.0 && vdd.is_finite(), "invalid vdd {vdd} V");
        self.vdd = vdd;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cards_validate() {
        for t in [
            Technology::predictive_70nm(),
            Technology::predictive_90nm(),
            Technology::predictive_45nm(),
        ] {
            t.nmos()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", t.name()));
            t.pmos()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", t.name()));
            assert!(t.lmin() > 0.0);
            assert!(t.vdd() > 0.0);
        }
    }

    #[test]
    fn scaling_trends_hold() {
        let t90 = Technology::predictive_90nm();
        let t70 = Technology::predictive_70nm();
        let t45 = Technology::predictive_45nm();
        // Vt falls and gate leakage rises as the node shrinks.
        assert!(t90.nmos().vt0 > t70.nmos().vt0);
        assert!(t70.nmos().vt0 > t45.nmos().vt0);
        assert!(t90.nmos().jg0 < t70.nmos().jg0);
        assert!(t70.nmos().jg0 < t45.nmos().jg0);
    }

    #[test]
    fn with_temperature_and_vdd() {
        let t = Technology::predictive_70nm()
            .with_temperature(358.0)
            .with_vdd(0.9);
        assert_eq!(t.temp_k(), 358.0);
        assert_eq!(t.vdd(), 0.9);
    }

    #[test]
    #[should_panic(expected = "invalid temperature")]
    fn rejects_negative_temperature() {
        let _ = Technology::predictive_70nm().with_temperature(-1.0);
    }

    #[test]
    fn params_selector_matches_fields() {
        let t = Technology::predictive_70nm();
        assert_eq!(t.params(Polarity::Nmos), t.nmos());
        assert_eq!(t.params(Polarity::Pmos), t.pmos());
    }
}
