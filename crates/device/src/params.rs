//! Transistor parameter cards.

use serde::{Deserialize, Serialize};

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl std::fmt::Display for Polarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Polarity::Nmos => write!(f, "nmos"),
            Polarity::Pmos => write!(f, "pmos"),
        }
    }
}

/// Compact-model parameters for one device flavour.
///
/// All voltages are expressed in the device's *own* polarity convention
/// (i.e. for PMOS these are the magnitudes after reflecting the terminal
/// voltages), so one equation set serves both flavours.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransistorParams {
    /// Zero-bias threshold voltage magnitude \[V\].
    pub vt0: f64,
    /// Body-effect coefficient γ \[√V\].
    pub gamma: f64,
    /// Surface potential 2φF \[V\] used by the body-effect formula.
    pub phi_s: f64,
    /// Subthreshold slope factor n (S = n·vT·ln 10).
    pub n_sub: f64,
    /// Process transconductance µ·Cox \[A/V²\] at the reference temperature.
    pub mu_cox: f64,
    /// Channel-length modulation λ \[1/V\].
    pub lambda: f64,
    /// DIBL coefficient η \[V/V\]: Vt reduction per volt of Vds.
    pub dibl: f64,
    /// Threshold temperature coefficient \[V/K\] (Vt drops as T rises).
    pub vt_tc: f64,
    /// Mobility temperature exponent (µ ∝ (T/T₀)^−mu_exp).
    pub mu_exp: f64,
    /// Gate tunnelling current density at full oxide drive \[A/m²\].
    pub jg0: f64,
    /// Gate-leakage voltage sensitivity \[V\] (exponential slope).
    pub sg: f64,
    /// Junction band-to-band tunnelling current per width at 1 V reverse
    /// bias \[A/m\].
    pub jbtbt: f64,
    /// BTBT reverse-bias exponential sensitivity \[1/V\].
    pub cbtbt: f64,
    /// Body-diode saturation current per width \[A/m\].
    pub jdiode: f64,
    /// Pelgrom matching coefficient A_vt \[V·m\]; σ(ΔVt) = A_vt / √(W·L).
    pub avt: f64,
}

impl TransistorParams {
    /// Validates physical sanity of the card.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let checks: [(&str, bool); 8] = [
            ("vt0 in (0, 1.5)", self.vt0 > 0.0 && self.vt0 < 1.5),
            ("gamma >= 0", self.gamma >= 0.0),
            ("phi_s > 0", self.phi_s > 0.0),
            ("n_sub >= 1", self.n_sub >= 1.0),
            ("mu_cox > 0", self.mu_cox > 0.0),
            ("lambda >= 0", self.lambda >= 0.0),
            ("dibl >= 0", self.dibl >= 0.0),
            ("avt > 0", self.avt > 0.0),
        ];
        for (name, ok) in checks {
            if !ok {
                return Err(format!("transistor parameter constraint violated: {name}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn card() -> TransistorParams {
        *crate::Technology::predictive_70nm().nmos()
    }

    #[test]
    fn builtin_card_validates() {
        card().validate().expect("built-in card must be valid");
    }

    #[test]
    fn validation_catches_bad_vt0() {
        let mut p = card();
        p.vt0 = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_n_sub() {
        let mut p = card();
        p.n_sub = 0.9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn polarity_display() {
        assert_eq!(Polarity::Nmos.to_string(), "nmos");
        assert_eq!(Polarity::Pmos.to_string(), "pmos");
    }
}
