//! Process-variation model: inter-die threshold shifts plus intra-die
//! random dopant fluctuation (RDF).
//!
//! This is the variation decomposition the paper works with throughout:
//! a die-global `Vt_inter ~ N(0, σ_inter²)` shared by every transistor on
//! the die, and an independent per-transistor `ΔVt_rdf ~ N(0, σ_rdf²)` with
//! `σ_rdf` from the Pelgrom law (bigger devices match better).

use rand::Rng;
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};

use crate::mosfet::Mosfet;

/// Statistical variation model for a technology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Standard deviation of the inter-die Vt shift \[V\].
    sigma_inter: f64,
}

impl VariationModel {
    /// Creates a model with the given inter-die sigma \[V\].
    ///
    /// # Panics
    ///
    /// Panics if `sigma_inter` is negative or non-finite.
    pub fn new(sigma_inter: f64) -> Self {
        assert!(
            sigma_inter.is_finite() && sigma_inter >= 0.0,
            "invalid sigma_inter {sigma_inter}"
        );
        Self { sigma_inter }
    }

    /// Inter-die sigma \[V\].
    pub fn sigma_inter(&self) -> f64 {
        self.sigma_inter
    }

    /// Samples the inter-die Vt shift of one die.
    pub fn sample_die(&self, rng: &mut impl Rng) -> f64 {
        let g: f64 = StandardNormal.sample(rng);
        self.sigma_inter * g
    }

    /// Samples the RDF deviation of one device (Pelgrom sigma).
    pub fn sample_device(&self, device: &Mosfet, rng: &mut impl Rng) -> f64 {
        let g: f64 = StandardNormal.sample(rng);
        device.sigma_vt() * g
    }

    /// Total per-device sigma when inter- and intra-die contributions are
    /// lumped (used by closed-form spread estimates).
    pub fn sigma_total(&self, device: &Mosfet) -> f64 {
        let s_rdf = device.sigma_vt();
        (self.sigma_inter * self.sigma_inter + s_rdf * s_rdf).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Technology;
    use pvtm_stats::Summary;

    #[test]
    fn sample_die_statistics() {
        let vm = VariationModel::new(0.05);
        let mut rng = pvtm_stats::rng::substream(31, 0);
        let s: Summary = (0..50_000).map(|_| vm.sample_die(&mut rng)).collect();
        assert!(s.mean().abs() < 1e-3);
        assert!((s.std_dev() - 0.05).abs() < 1e-3);
    }

    #[test]
    fn sample_device_uses_pelgrom_sigma() {
        let t = Technology::predictive_70nm();
        let dev = Mosfet::nmos(&t, 100e-9, t.lmin());
        let vm = VariationModel::new(0.0);
        let mut rng = pvtm_stats::rng::substream(32, 0);
        let s: Summary = (0..50_000)
            .map(|_| vm.sample_device(&dev, &mut rng))
            .collect();
        let expected = dev.sigma_vt();
        assert!((s.std_dev() - expected).abs() < 0.02 * expected);
        // Minimum-geometry RDF sigma should land in the paper's regime.
        assert!(expected > 0.04 && expected < 0.10, "sigma = {expected}");
    }

    #[test]
    fn sigma_total_combines_in_quadrature() {
        let t = Technology::predictive_70nm();
        let dev = Mosfet::nmos(&t, 100e-9, t.lmin());
        let vm = VariationModel::new(0.04);
        let s = vm.sigma_total(&dev);
        let expected = (0.04f64.powi(2) + dev.sigma_vt().powi(2)).sqrt();
        assert!((s - expected).abs() < 1e-15);
    }

    #[test]
    fn zero_sigma_inter_is_deterministic_for_dies() {
        let vm = VariationModel::new(0.0);
        let mut rng = pvtm_stats::rng::substream(33, 0);
        for _ in 0..10 {
            assert_eq!(vm.sample_die(&mut rng), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "invalid sigma_inter")]
    fn rejects_negative_sigma() {
        let _ = VariationModel::new(-0.01);
    }
}
