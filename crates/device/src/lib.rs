//! Compact MOSFET models for sub-90 nm predictive technologies.
//!
//! The SOCC 2006 paper evaluates everything with HSPICE on the Berkeley
//! Predictive Technology Model (BPTM) 70 nm device cards. This crate is the
//! substitute substrate: an EKV-style compact model that is smooth from weak
//! to strong inversion (Newton-friendly), with
//!
//! - threshold voltage including **body effect** (the knob exploited by the
//!   paper's adaptive body bias) and DIBL,
//! - explicit **leakage components** — subthreshold, gate, junction
//!   band-to-band tunnelling, and the forward body diode — whose opposing
//!   body-bias sensitivities reproduce the paper's Fig. 5a,
//! - **random dopant fluctuation** statistics via the Pelgrom law, plus
//!   inter-die threshold shifts (the paper's `Vt_inter`),
//! - temperature dependence of the thermal voltage, threshold and mobility.
//!
//! # Example
//!
//! ```
//! use pvtm_device::{Technology, Mosfet, Bias};
//!
//! let tech = Technology::predictive_70nm();
//! let n = Mosfet::nmos(&tech, 200e-9, tech.lmin());
//! // Saturation current at full gate drive.
//! let on = n.ids(Bias::new(1.0, 1.0, 0.0, 0.0), tech.temp_k());
//! // Subthreshold leakage with the gate off.
//! let off = n.ids(Bias::new(0.0, 1.0, 0.0, 0.0), tech.temp_k());
//! assert!(on > 1e4 * off);
//! ```

pub mod leakage;
pub mod mosfet;
pub mod params;
pub mod tech;
pub mod variation;

pub use leakage::LeakageComponents;
pub use mosfet::{Bias, Mosfet};
pub use params::{Polarity, TransistorParams};
pub use tech::Technology;
pub use variation::VariationModel;

/// Boltzmann constant over elementary charge, in V/K.
pub const K_B_OVER_Q: f64 = 8.617_333_262e-5;

/// Thermal voltage `kT/q` at the given temperature in kelvin.
///
/// # Example
///
/// ```
/// let vt = pvtm_device::thermal_voltage(300.0);
/// assert!((vt - 0.02585).abs() < 1e-4);
/// ```
pub fn thermal_voltage(temp_k: f64) -> f64 {
    K_B_OVER_Q * temp_k
}
