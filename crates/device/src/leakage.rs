//! Static leakage components of an off-state device.
//!
//! Following the paper's §III.F (and its ref \[7\]), the total leakage of a
//! cell in bulk silicon splits into **subthreshold**, **gate** and
//! **junction band-to-band tunnelling** components, plus the **forward body
//! diode** that turns on under aggressive forward body bias. Their opposing
//! body-bias sensitivities bound the usable FBB/RBB range (paper Fig. 5a):
//!
//! - reverse body bias *suppresses* subthreshold leakage but *amplifies*
//!   junction BTBT,
//! - forward body bias does the opposite and eventually forward-biases the
//!   body diode,
//! - gate leakage barely cares.

use serde::{Deserialize, Serialize};

use crate::mosfet::Mosfet;
use crate::thermal_voltage;

/// Leakage current decomposition \[A\]. All components are non-negative.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LeakageComponents {
    /// Subthreshold (weak-inversion channel) leakage.
    pub subthreshold: f64,
    /// Gate oxide tunnelling leakage.
    pub gate: f64,
    /// Reverse-junction band-to-band tunnelling leakage.
    pub junction: f64,
    /// Forward body-diode current (significant only under strong FBB).
    pub diode: f64,
}

impl LeakageComponents {
    /// Total leakage \[A\].
    pub fn total(&self) -> f64 {
        self.subthreshold + self.gate + self.junction + self.diode
    }

    /// Component-wise sum.
    pub fn add(&self, other: &LeakageComponents) -> LeakageComponents {
        LeakageComponents {
            subthreshold: self.subthreshold + other.subthreshold,
            gate: self.gate + other.gate,
            junction: self.junction + other.junction,
            diode: self.diode + other.diode,
        }
    }

    /// Component-wise scale (e.g. per-cell → per-array).
    pub fn scale(&self, k: f64) -> LeakageComponents {
        LeakageComponents {
            subthreshold: self.subthreshold * k,
            gate: self.gate * k,
            junction: self.junction * k,
            diode: self.diode * k,
        }
    }
}

impl std::iter::Sum for LeakageComponents {
    fn sum<I: Iterator<Item = LeakageComponents>>(iter: I) -> Self {
        iter.fold(LeakageComponents::default(), |acc, x| acc.add(&x))
    }
}

impl Mosfet {
    /// Gate tunnelling current for the given oxide drive `vox` \[V\]
    /// (gate-to-channel voltage magnitude, positive = gate attracting
    /// carriers). Exponential in the drive, normalized to the card's
    /// density `jg0` at 1 V.
    pub fn gate_leak(&self, vox: f64) -> f64 {
        if vox <= 0.0 {
            return 0.0;
        }
        let p = self.params();
        p.jg0 * self.w() * self.l() * ((vox - 1.0) / p.sg).exp()
    }

    /// Junction band-to-band tunnelling current for reverse bias `v_rev`
    /// \[V\] across the drain/source-to-body junction. Grows exponentially
    /// with the reverse bias, so RBB makes it worse.
    pub fn junction_btbt(&self, v_rev: f64) -> f64 {
        if v_rev <= 0.0 {
            return 0.0;
        }
        let p = self.params();
        p.jbtbt * self.w() * v_rev * (p.cbtbt * (v_rev - 1.0)).exp()
    }

    /// Forward body-diode current for forward bias `v_fwd` \[V\] on the
    /// body-to-source/drain junction.
    pub fn body_diode(&self, v_fwd: f64, temp_k: f64) -> f64 {
        if v_fwd <= 0.0 {
            return 0.0;
        }
        let vt = thermal_voltage(temp_k);
        self.params().jdiode * self.w() * ((v_fwd / vt).exp() - 1.0)
    }

    /// Full leakage decomposition of this device when *off*, with `vds`
    /// across the channel and body bias `vbb` applied relative to the
    /// source (positive = forward body bias in the device's own polarity).
    ///
    /// The gate is assumed at the source potential (off) and the drain at
    /// `vds`; the gate component uses the drain-to-gate overlap drive.
    ///
    /// # Example
    ///
    /// ```
    /// use pvtm_device::{Technology, Mosfet};
    /// let t = Technology::predictive_70nm();
    /// let n = Mosfet::nmos(&t, 200e-9, t.lmin());
    /// let zbb = n.off_leakage(1.0, 0.0, 300.0);
    /// let rbb = n.off_leakage(1.0, -0.4, 300.0);
    /// assert!(rbb.subthreshold < zbb.subthreshold); // RBB cuts channel leak
    /// assert!(rbb.junction > zbb.junction);         // ... but BTBT grows
    /// ```
    pub fn off_leakage(&self, vds: f64, vbb: f64, temp_k: f64) -> LeakageComponents {
        assert!(vds >= 0.0, "off_leakage expects vds >= 0, got {vds}");
        let subthreshold = self.subthreshold_leak(vds, vbb, temp_k).max(0.0);
        // Off device: the only meaningful oxide drive is drain-to-gate
        // overlap (EDT: edge direct tunnelling), weaker than full drive.
        let gate = 0.3 * self.gate_leak(vds);
        // Drain junction reverse bias grows with RBB (vbb < 0).
        let junction = self.junction_btbt(vds - vbb);
        // Source junction forward-biases under FBB (vbb > 0).
        let diode = self.body_diode(vbb, temp_k);
        LeakageComponents {
            subthreshold,
            gate,
            junction,
            diode,
        }
    }

    /// Leakage decomposition of an *on* device used as a load (gate at full
    /// drive `vdd`, zero Vds): only gate tunnelling flows.
    pub fn on_state_gate_leakage(&self, vdd: f64) -> LeakageComponents {
        LeakageComponents {
            gate: self.gate_leak(vdd),
            ..LeakageComponents::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Technology;

    fn nmos() -> Mosfet {
        let t = Technology::predictive_70nm();
        Mosfet::nmos(&t, 200e-9, t.lmin())
    }

    #[test]
    fn total_is_sum_of_components() {
        let l = LeakageComponents {
            subthreshold: 1.0,
            gate: 2.0,
            junction: 3.0,
            diode: 4.0,
        };
        assert_eq!(l.total(), 10.0);
        assert_eq!(l.scale(0.5).total(), 5.0);
        assert_eq!(l.add(&l).total(), 20.0);
    }

    #[test]
    fn sum_iterator() {
        let parts = vec![
            LeakageComponents {
                subthreshold: 1.0,
                ..Default::default()
            },
            LeakageComponents {
                gate: 2.0,
                ..Default::default()
            },
        ];
        let total: LeakageComponents = parts.into_iter().sum();
        assert_eq!(total.subthreshold, 1.0);
        assert_eq!(total.gate, 2.0);
    }

    #[test]
    fn gate_leak_zero_for_nonpositive_drive() {
        let n = nmos();
        assert_eq!(n.gate_leak(0.0), 0.0);
        assert_eq!(n.gate_leak(-0.5), 0.0);
        assert!(n.gate_leak(1.0) > 0.0);
    }

    #[test]
    fn gate_leak_is_exponential_in_drive() {
        let n = nmos();
        let r = n.gate_leak(1.0) / n.gate_leak(0.8);
        let expected = (0.2 / n.params().sg).exp();
        assert!((r / expected - 1.0).abs() < 1e-12);
    }

    #[test]
    fn btbt_grows_with_reverse_bias() {
        let n = nmos();
        assert_eq!(n.junction_btbt(0.0), 0.0);
        assert!(n.junction_btbt(1.4) > n.junction_btbt(1.0));
        assert!(n.junction_btbt(1.0) > n.junction_btbt(0.6));
    }

    #[test]
    fn diode_negligible_until_strong_fbb() {
        let n = nmos();
        let weak = n.body_diode(0.2, 300.0);
        let strong = n.body_diode(0.6, 300.0);
        assert!(strong > 1e6 * weak.max(1e-30));
        assert_eq!(n.body_diode(-0.3, 300.0), 0.0);
    }

    #[test]
    fn off_leakage_body_bias_tradeoff() {
        // The Fig. 5a mechanism: total leakage has an interior minimum
        // because RBB trades subthreshold for junction BTBT.
        let n = nmos();
        let totals: Vec<f64> = (-8..=8)
            .map(|i| n.off_leakage(1.0, i as f64 * 0.075, 300.0).total())
            .collect();
        let min_idx = totals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            min_idx > 0 && min_idx < totals.len() - 1,
            "leakage minimum must be interior, found at index {min_idx}: {totals:?}"
        );
    }

    #[test]
    fn off_leakage_components_in_sane_ratio() {
        // At ZBB the subthreshold component should dominate but not by
        // orders of magnitude (gate and junction are significant in
        // sub-90nm nodes — that is the premise of the paper's Fig. 5a).
        let n = nmos();
        let l = n.off_leakage(1.0, 0.0, 300.0);
        assert!(l.subthreshold > l.gate);
        assert!(l.subthreshold > l.junction);
        assert!(l.gate > l.subthreshold / 100.0);
        assert!(l.junction > l.subthreshold / 100.0);
        assert!(l.diode < l.subthreshold / 100.0);
    }
}
