//! EKV-style MOSFET I-V model.
//!
//! The model is a single smooth equation covering weak inversion
//! (subthreshold leakage) through strong inversion (read/write drive),
//! which is exactly what a Newton-based DC solver wants. Body effect enters
//! through the threshold voltage, making the device respond to the paper's
//! adaptive body bias; DIBL and channel-length modulation give realistic
//! output characteristics.

use serde::{Deserialize, Serialize};

use crate::params::{Polarity, TransistorParams};
use crate::tech::Technology;
use crate::thermal_voltage;

/// Absolute terminal voltages of a MOSFET (gate, drain, source, body),
/// all referenced to circuit ground.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bias {
    /// Gate voltage \[V\].
    pub vg: f64,
    /// Drain voltage \[V\].
    pub vd: f64,
    /// Source voltage \[V\].
    pub vs: f64,
    /// Body (bulk) voltage \[V\].
    pub vb: f64,
}

impl Bias {
    /// Creates a bias point from `(vg, vd, vs, vb)`.
    pub fn new(vg: f64, vd: f64, vs: f64, vb: f64) -> Self {
        Self { vg, vd, vs, vb }
    }

    /// Reflects all terminals about ground — maps a PMOS bias into the
    /// NMOS-equivalent space.
    fn reflected(self) -> Self {
        Self {
            vg: -self.vg,
            vd: -self.vd,
            vs: -self.vs,
            vb: -self.vb,
        }
    }
}

/// Numerically safe `ln(1 + e^x)`.
#[inline]
fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// A MOSFET instance: parameter card, geometry and a per-device threshold
/// deviation (inter-die shift + RDF sample).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    polarity: Polarity,
    params: TransistorParams,
    w: f64,
    l: f64,
    delta_vt: f64,
}

impl Mosfet {
    /// Creates an NMOS of the given width and length \[m\].
    ///
    /// # Panics
    ///
    /// Panics if the geometry is non-positive or below the technology's
    /// minimum length.
    pub fn nmos(tech: &Technology, w: f64, l: f64) -> Self {
        Self::new(Polarity::Nmos, *tech.nmos(), w, l, tech.lmin())
    }

    /// Creates a PMOS of the given width and length \[m\].
    ///
    /// # Panics
    ///
    /// Panics if the geometry is non-positive or below the technology's
    /// minimum length.
    pub fn pmos(tech: &Technology, w: f64, l: f64) -> Self {
        Self::new(Polarity::Pmos, *tech.pmos(), w, l, tech.lmin())
    }

    fn new(polarity: Polarity, params: TransistorParams, w: f64, l: f64, lmin: f64) -> Self {
        assert!(w > 0.0 && w.is_finite(), "invalid width {w}");
        assert!(
            l >= lmin && l.is_finite(),
            "channel length {l} below technology minimum {lmin}"
        );
        params.validate().expect("invalid parameter card");
        Self {
            polarity,
            params,
            w,
            l,
            delta_vt: 0.0,
        }
    }

    /// Returns a copy with an additional threshold-voltage deviation
    /// (positive = higher |Vt|). This is where inter-die shifts and RDF
    /// samples are injected.
    pub fn with_delta_vt(mut self, delta_vt: f64) -> Self {
        assert!(delta_vt.is_finite(), "non-finite delta_vt");
        self.delta_vt = delta_vt;
        self
    }

    /// Sets the threshold deviation in place.
    pub fn set_delta_vt(&mut self, delta_vt: f64) {
        assert!(delta_vt.is_finite(), "non-finite delta_vt");
        self.delta_vt = delta_vt;
    }

    /// Channel polarity.
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// Channel width \[m\].
    pub fn w(&self) -> f64 {
        self.w
    }

    /// Channel length \[m\].
    pub fn l(&self) -> f64 {
        self.l
    }

    /// Current threshold deviation \[V\].
    pub fn delta_vt(&self) -> f64 {
        self.delta_vt
    }

    /// Parameter card in use.
    pub fn params(&self) -> &TransistorParams {
        &self.params
    }

    /// RDF-induced threshold standard deviation from the Pelgrom law,
    /// `σ = A_vt / √(W·L)`.
    ///
    /// # Example
    ///
    /// ```
    /// use pvtm_device::{Technology, Mosfet};
    /// let t = Technology::predictive_70nm();
    /// let small = Mosfet::nmos(&t, 100e-9, t.lmin());
    /// let big = Mosfet::nmos(&t, 400e-9, t.lmin());
    /// // Bigger devices match better.
    /// assert!(big.sigma_vt() < small.sigma_vt());
    /// ```
    pub fn sigma_vt(&self) -> f64 {
        self.params.avt / (self.w * self.l).sqrt()
    }

    /// Effective threshold voltage (own-polarity magnitude convention) for
    /// an NMOS-space bias with `vd >= vs`.
    fn vt_eff(&self, vd: f64, vs: f64, vb: f64, temp_k: f64) -> f64 {
        let p = &self.params;
        // Body effect: reverse body bias (vs > vb) raises Vt.
        let arg = (p.phi_s + (vs - vb)).max(0.01);
        let body = p.gamma * (arg.sqrt() - p.phi_s.sqrt());
        let dibl = p.dibl * (vd - vs);
        let tshift = p.vt_tc * (temp_k - 300.0);
        p.vt0 + self.delta_vt + body - dibl - tshift
    }

    /// Threshold voltage at a bias point (own-polarity magnitude),
    /// exposing the body-bias dependence used by the self-repair analyses.
    pub fn vt(&self, bias: Bias, temp_k: f64) -> f64 {
        let b = match self.polarity {
            Polarity::Nmos => bias,
            Polarity::Pmos => bias.reflected(),
        };
        let (vd, vs) = if b.vd >= b.vs {
            (b.vd, b.vs)
        } else {
            (b.vs, b.vd)
        };
        self.vt_eff(vd, vs, b.vb, temp_k)
    }

    /// Drain current \[A\], positive *into* the drain terminal.
    ///
    /// Smooth in every terminal voltage; symmetric under drain/source
    /// exchange (the current flips sign), which the DC solver relies on.
    ///
    /// # Example
    ///
    /// ```
    /// use pvtm_device::{Technology, Mosfet, Bias};
    /// let t = Technology::predictive_70nm();
    /// let n = Mosfet::nmos(&t, 140e-9, t.lmin());
    /// let fwd = n.ids(Bias::new(1.0, 0.6, 0.0, 0.0), 300.0);
    /// let rev = n.ids(Bias::new(1.0, 0.0, 0.6, 0.0), 300.0);
    /// assert!(fwd > 0.0 && rev < 0.0);
    /// ```
    pub fn ids(&self, bias: Bias, temp_k: f64) -> f64 {
        match self.polarity {
            Polarity::Nmos => self.ids_nspace(bias, temp_k),
            Polarity::Pmos => -self.ids_nspace(bias.reflected(), temp_k),
        }
    }

    /// NMOS-space current with automatic drain/source ordering.
    fn ids_nspace(&self, b: Bias, temp_k: f64) -> f64 {
        if b.vd >= b.vs {
            self.ids_ordered(b.vg, b.vd, b.vs, b.vb, temp_k)
        } else {
            -self.ids_ordered(b.vg, b.vs, b.vd, b.vb, temp_k)
        }
    }

    /// Core EKV evaluation with `vd >= vs` guaranteed (source-referenced
    /// interpolation between weak and strong inversion).
    fn ids_ordered(&self, vg: f64, vd: f64, vs: f64, vb: f64, temp_k: f64) -> f64 {
        let p = &self.params;
        let vt_therm = thermal_voltage(temp_k);
        let vt = self.vt_eff(vd, vs, vb, temp_k);
        let n = p.n_sub;
        let vgs = vg - vs;
        let vds = vd - vs;
        let mu_cox = p.mu_cox * (temp_k / 300.0).powf(-p.mu_exp);
        let ispec = 2.0 * n * mu_cox * vt_therm * vt_therm * (self.w / self.l);
        // Forward/reverse inversion charges: weak inversion asymptotes to
        // exp((vgs - vt)/(n·vT))·(1 - exp(-vds/vT)), strong inversion to the
        // square law with slope factor n.
        let i_f = softplus((vgs - vt) / (2.0 * n * vt_therm)).powi(2);
        let i_r = softplus((vgs - vt - n * vds) / (2.0 * n * vt_therm)).powi(2);
        ispec * (i_f - i_r) * (1.0 + p.lambda * vds)
    }

    /// Subthreshold (off-state channel) leakage for the device biased off
    /// with `vds` across it, body at `vbs` relative to the source \[A\].
    ///
    /// For NMOS this is `ids(vg=vs, vd=vs+vds, vs, vb=vs+vbs)`; positive
    /// `vbs` is forward body bias (leakage up), negative is reverse
    /// (leakage down) — the core mechanism of the paper's Fig. 5a.
    pub fn subthreshold_leak(&self, vds: f64, vbs: f64, temp_k: f64) -> f64 {
        assert!(vds >= 0.0, "subthreshold_leak expects vds >= 0, got {vds}");
        match self.polarity {
            Polarity::Nmos => self.ids(Bias::new(0.0, vds, 0.0, vbs), temp_k),
            Polarity::Pmos => -self.ids(Bias::new(0.0, -vds, 0.0, -vbs), temp_k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::predictive_70nm()
    }

    fn nmos() -> Mosfet {
        let t = tech();
        Mosfet::nmos(&t, 200e-9, t.lmin())
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let n = nmos();
        for vg in [0.0, 0.3, 0.6, 1.0] {
            let i = n.ids(Bias::new(vg, 0.4, 0.4, 0.0), 300.0);
            assert!(i.abs() < 1e-18, "vg={vg}: i={i}");
        }
    }

    #[test]
    fn current_monotone_in_vgs() {
        let n = nmos();
        let mut prev = -1.0;
        for i in 0..=20 {
            let vg = i as f64 * 0.05;
            let id = n.ids(Bias::new(vg, 1.0, 0.0, 0.0), 300.0);
            assert!(id > prev, "non-monotone at vg={vg}");
            prev = id;
        }
    }

    #[test]
    fn current_monotone_in_vds() {
        let n = nmos();
        let mut prev = -1.0;
        for i in 0..=20 {
            let vd = i as f64 * 0.05;
            let id = n.ids(Bias::new(1.0, vd, 0.0, 0.0), 300.0);
            assert!(id >= prev, "non-monotone at vd={vd}");
            prev = id;
        }
    }

    #[test]
    fn drain_source_exchange_flips_sign() {
        let n = nmos();
        for (vd, vs) in [(0.8, 0.1), (0.5, 0.0), (1.0, 0.9)] {
            let fwd = n.ids(Bias::new(0.7, vd, vs, 0.0), 300.0);
            let rev = n.ids(Bias::new(0.7, vs, vd, 0.0), 300.0);
            assert!(
                (fwd + rev).abs() < 1e-12 * fwd.abs().max(1e-15),
                "asymmetry at vd={vd} vs={vs}"
            );
        }
    }

    #[test]
    fn on_off_ratio_is_large() {
        let n = nmos();
        let on = n.ids(Bias::new(1.0, 1.0, 0.0, 0.0), 300.0);
        let off = n.ids(Bias::new(0.0, 1.0, 0.0, 0.0), 300.0);
        assert!(on / off > 1e4, "Ion/Ioff = {}", on / off);
        // Off current should be in the nA ballpark for this card.
        assert!(off > 1e-10 && off < 1e-7, "off = {off}");
    }

    #[test]
    fn subthreshold_slope_near_spec() {
        // S = n·vT·ln10 ≈ 83 mV/dec for n = 1.4, measured deep in weak
        // inversion (a raised-Vt copy keeps the probe points far below Vt
        // where the EKV interpolation is purely exponential).
        let n = nmos().with_delta_vt(0.2);
        let i1 = n.ids(Bias::new(0.05, 1.0, 0.0, 0.0), 300.0);
        let i2 = n.ids(Bias::new(0.10, 1.0, 0.0, 0.0), 300.0);
        let slope = 0.05 / (i2 / i1).log10();
        assert!(
            (slope - 0.083).abs() < 0.005,
            "subthreshold slope {slope} V/dec"
        );
    }

    #[test]
    fn reverse_body_bias_raises_vt_and_cuts_leakage() {
        let n = nmos();
        let vt0 = n.vt(Bias::new(0.0, 0.0, 0.0, 0.0), 300.0);
        let vt_rbb = n.vt(Bias::new(0.0, 0.0, 0.0, -0.4), 300.0);
        let vt_fbb = n.vt(Bias::new(0.0, 0.0, 0.0, 0.4), 300.0);
        assert!(vt_rbb > vt0, "RBB must raise Vt");
        assert!(vt_fbb < vt0, "FBB must lower Vt");

        let leak0 = n.subthreshold_leak(1.0, 0.0, 300.0);
        let leak_rbb = n.subthreshold_leak(1.0, -0.4, 300.0);
        let leak_fbb = n.subthreshold_leak(1.0, 0.4, 300.0);
        assert!(leak_rbb < leak0 && leak0 < leak_fbb);
        // RBB of 0.4 V should cut subthreshold leakage several-fold.
        assert!(leak0 / leak_rbb > 3.0);
    }

    #[test]
    fn delta_vt_shifts_current() {
        let n = nmos();
        let hi = n.clone().with_delta_vt(0.05);
        let lo = n.clone().with_delta_vt(-0.05);
        let b = Bias::new(0.0, 1.0, 0.0, 0.0);
        assert!(hi.ids(b, 300.0) < n.ids(b, 300.0));
        assert!(lo.ids(b, 300.0) > n.ids(b, 300.0));
    }

    #[test]
    fn pmos_mirrors_nmos_behaviour() {
        let t = tech();
        let p = Mosfet::pmos(&t, 200e-9, t.lmin());
        // PMOS on: gate at 0, source at vdd, drain at 0.
        let on = p.ids(Bias::new(0.0, 0.0, 1.0, 1.0), 300.0);
        // Current flows out of the drain terminal: negative by convention.
        assert!(on < 0.0, "PMOS on-current sign: {on}");
        // PMOS off: gate at vdd.
        let off = p.ids(Bias::new(1.0, 0.0, 1.0, 1.0), 300.0);
        assert!(off.abs() < on.abs() / 1e4);
    }

    #[test]
    fn temperature_raises_leakage_and_lowers_drive() {
        let n = nmos();
        let leak_cold = n.ids(Bias::new(0.0, 1.0, 0.0, 0.0), 300.0);
        let leak_hot = n.ids(Bias::new(0.0, 1.0, 0.0, 0.0), 380.0);
        assert!(
            leak_hot > 5.0 * leak_cold,
            "leakage must grow strongly with T"
        );
        let on_cold = n.ids(Bias::new(1.0, 1.0, 0.0, 0.0), 300.0);
        let on_hot = n.ids(Bias::new(1.0, 1.0, 0.0, 0.0), 380.0);
        assert!(
            on_hot < on_cold,
            "mobility degradation must win at full drive"
        );
    }

    #[test]
    fn width_scales_current_linearly() {
        let t = tech();
        let n1 = Mosfet::nmos(&t, 100e-9, t.lmin());
        let n2 = Mosfet::nmos(&t, 200e-9, t.lmin());
        let b = Bias::new(1.0, 1.0, 0.0, 0.0);
        let r = n2.ids(b, 300.0) / n1.ids(b, 300.0);
        assert!((r - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "below technology minimum")]
    fn rejects_short_channel() {
        let t = tech();
        let _ = Mosfet::nmos(&t, 100e-9, 50e-9);
    }

    #[test]
    fn softplus_limits() {
        assert_eq!(softplus(100.0), 100.0);
        assert!(softplus(-100.0) < 1e-40);
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
    }
}
