//! The live-metrics determinism contract at the Reporter level: running
//! the same figure with `PVTM_METRICS_ADDR` set (server up, endpoints
//! scraped mid-run) and unset must produce byte-identical deterministic
//! outputs — result JSON, telemetry sidecar, and the finalized event
//! journal. The only knob-set additions are side files (`metrics.addr`)
//! and the transient server itself.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use pvtm_bench::Reporter;
use pvtm_stats::ImportanceSampler;
use pvtm_telemetry as tm;

const FIGURE: &str = "fig_metrics_identity";

/// One deterministic mini-figure: a seeded importance-sampled tail
/// probability with telemetry fully on and the clock gated off.
fn run_figure(dir: &Path, scrape: bool) -> f64 {
    let _ = std::fs::remove_dir_all(dir);
    std::env::set_var("PVTM_RESULTS_DIR", dir);
    std::env::set_var("PVTM_TELEMETRY", "full");
    std::env::set_var("PVTM_TELEMETRY_CLOCK", "off");
    tm::set_mode(tm::Mode::Full);
    tm::set_clock_enabled(false);

    let mut rep = Reporter::new();
    let value = rep.figure(FIGURE, || {
        let _t = tm::trace_scope("mc.identity");
        let sampler = ImportanceSampler::new(vec![3.0]);
        if scrape {
            let addr = rep_addr(dir);
            for target in ["/metrics", "/snapshot.json", "/healthz"] {
                let _ = scrape_once(&addr, target);
            }
        }
        sampler.probability(4 * 4096, 11, |z| z[0] > 3.0).value
    });
    rep.finish();

    std::env::remove_var("PVTM_RESULTS_DIR");
    std::env::remove_var("PVTM_TELEMETRY");
    std::env::remove_var("PVTM_TELEMETRY_CLOCK");
    value
}

fn rep_addr(dir: &Path) -> String {
    std::fs::read_to_string(dir.join("metrics.addr"))
        .expect("knob-set run writes metrics.addr")
        .trim()
        .to_string()
}

fn scrape_once(addr: &str, target: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to live server");
    conn.write_all(format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    response
}

fn deterministic_outputs(dir: &Path) -> Vec<(String, Vec<u8>)> {
    [
        format!("{FIGURE}.json"),
        format!("{FIGURE}.telemetry.json"),
        format!("{FIGURE}.trace_events.json"),
        format!("{FIGURE}.events.jsonl"),
    ]
    .into_iter()
    .map(|name| {
        let bytes = std::fs::read(dir.join(&name))
            .unwrap_or_else(|e| panic!("figure output {name} missing: {e}"));
        (name, bytes)
    })
    .collect()
}

#[test]
fn a_scraped_run_is_byte_identical_to_an_unscraped_one() {
    // Env knobs and telemetry state are process-global: one test owns them.
    let base: PathBuf = std::env::temp_dir().join("pvtm-metrics-identity");
    let dir_off = base.join("knob-unset");
    let dir_on = base.join("knob-set");

    std::env::remove_var("PVTM_METRICS_ADDR");
    let v_off = run_figure(&dir_off, false);

    std::env::set_var("PVTM_METRICS_ADDR", "127.0.0.1:0");
    let v_on = run_figure(&dir_on, true);
    std::env::remove_var("PVTM_METRICS_ADDR");

    assert_eq!(
        v_off, v_on,
        "the estimate itself must not depend on the knob"
    );
    assert!(
        dir_on.join("metrics.addr").is_file(),
        "knob-set run advertises its bound address"
    );
    assert!(
        !dir_off.join("metrics.addr").exists(),
        "knob-unset run writes no live-plane side files"
    );
    for ((name, off), (_, on)) in deterministic_outputs(&dir_off)
        .into_iter()
        .zip(deterministic_outputs(&dir_on))
    {
        assert_eq!(
            off, on,
            "{name} differs between knob-set and knob-unset runs"
        );
    }
    let _ = std::fs::remove_dir_all(&base);
}
