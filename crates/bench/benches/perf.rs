//! Criterion performance benchmarks of the workspace substrates.
//!
//! These characterize the building blocks whose speed determines how long
//! the figure reproduction takes: the DC solver, the cell metric
//! evaluations, the linearized failure analysis, the March-test engine and
//! the statistical kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pvtm_bist::{BistController, MarchTest, MemoryModel};
use pvtm_device::{Bias, Mosfet, Technology};
use pvtm_sram::{AnalysisConfig, CellSizing, Conditions, FailureAnalyzer, SramCell};
use pvtm_stats::{GaussHermite, ImportanceSampler};

fn bench_device(c: &mut Criterion) {
    let tech = Technology::predictive_70nm();
    let n = Mosfet::nmos(&tech, 200e-9, tech.lmin());
    c.bench_function("device/ids_eval", |b| {
        b.iter(|| {
            let bias = Bias::new(
                black_box(0.7),
                black_box(0.9),
                black_box(0.0),
                black_box(-0.2),
            );
            black_box(n.ids(bias, 300.0))
        })
    });
    c.bench_function("device/off_leakage_decomposition", |b| {
        b.iter(|| black_box(n.off_leakage(black_box(1.0), black_box(-0.3), 300.0)))
    });
}

fn bench_circuit(c: &mut Criterion) {
    let tech = Technology::predictive_70nm();
    let analysis = pvtm_sram::CellAnalysis::new(&tech, AnalysisConfig::default());
    let cell = SramCell::nominal(&tech);
    let cond = Conditions::active(&tech);
    c.bench_function("circuit/read_divider_dc_solve", |b| {
        b.iter(|| black_box(analysis.v_read(&cell, &cond).expect("solve")))
    });
    c.bench_function("circuit/full_cell_hold_state", |b| {
        b.iter(|| black_box(analysis.hold_state(&cell, &cond).expect("solve")))
    });
    c.bench_function("circuit/trip_point_bisection", |b| {
        b.iter(|| black_box(analysis.v_trip_rd(&cell, &cond).expect("solve")))
    });
}

fn bench_failure_analysis(c: &mut Criterion) {
    let tech = Technology::predictive_70nm();
    let fa = FailureAnalyzer::new(
        &tech,
        CellSizing::default_for(&tech),
        AnalysisConfig::default(),
    );
    let cond = Conditions::standby(&tech, 0.5);
    c.bench_function("failure/margins_single_cell", |b| {
        b.iter(|| {
            black_box(
                fa.margins_at(&[0.1, -0.1, 0.2, -0.2, 0.1, -0.1], 0.0, &cond)
                    .expect("margins"),
            )
        })
    });
    let mut group = c.benchmark_group("failure");
    group.sample_size(10);
    group.bench_function("linearize_full_corner", |b| {
        b.iter(|| black_box(fa.linearize(black_box(0.0), &cond).expect("linearize")))
    });
    group.bench_function("linearize_hold_only", |b| {
        b.iter(|| black_box(fa.linearize_hold(black_box(0.0), &cond).expect("hold")))
    });
    group.finish();
}

/// The Monte-Carlo per-sample hot path, before and after the compiled
/// templates: per-sample netlist construction vs patched warm-started
/// templates on a persistent evaluator.
fn bench_mc_hot_path(c: &mut Criterion) {
    let tech = Technology::predictive_70nm();
    let analysis = pvtm_sram::CellAnalysis::new(&tech, AnalysisConfig::default());
    let base = SramCell::nominal(&tech);
    let fa = FailureAnalyzer::new(
        &tech,
        CellSizing::default_for(&tech),
        AnalysisConfig::default(),
    );
    let cond = Conditions::standby(&tech, 0.3);
    // Distinct samples rotated per iteration, so the warm path has to track
    // a moving solution like a real Monte-Carlo stream.
    let samples: [[f64; 6]; 4] = [
        [0.1, -0.1, 0.2, -0.2, 0.1, -0.1],
        [-0.3, 0.2, -0.1, 0.4, -0.2, 0.3],
        [0.5, 0.1, -0.4, 0.0, 0.3, -0.2],
        [-0.1, -0.3, 0.1, 0.2, -0.4, 0.0],
    ];

    let sigmas: [f64; 6] = std::array::from_fn(|k| base.sigma_vt(pvtm_sram::Xtor::ALL[k]));
    let mut group = c.benchmark_group("mc_hot_path");
    let mut i = 0usize;
    group.bench_function("margins_reference_netlists", |b| {
        b.iter(|| {
            i = (i + 1) % samples.len();
            let dvt: [f64; 6] = std::array::from_fn(|k| sigmas[k] * samples[i][k]);
            let mut cell = base.clone();
            cell.set_deviations(black_box(dvt));
            black_box(analysis.margins(&cell, &cond).expect("margins"))
        })
    });
    let mut cold = fa.evaluator();
    cold.set_warm_start(false);
    let mut i = 0usize;
    group.bench_function("margins_compiled_cold", |b| {
        b.iter(|| {
            i = (i + 1) % samples.len();
            black_box(
                fa.margins_at_with(&mut cold, black_box(&samples[i]), 0.0, &cond)
                    .expect("margins"),
            )
        })
    });
    let mut warm = fa.evaluator();
    let mut i = 0usize;
    group.bench_function("margins_compiled_warm", |b| {
        b.iter(|| {
            i = (i + 1) % samples.len();
            black_box(
                fa.margins_at_with(&mut warm, black_box(&samples[i]), 0.0, &cond)
                    .expect("margins"),
            )
        })
    });
    group.finish();
}

fn bench_bist(c: &mut Criterion) {
    c.bench_function("bist/march_c_minus_16kcells", |b| {
        b.iter_batched(
            || MemoryModel::new(256, 64),
            |mut mem| {
                let report = BistController::new()
                    .run(&MarchTest::march_c_minus(), &mut mem)
                    .expect("march columns in range");
                black_box(report.faulty_columns())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_stats(c: &mut Criterion) {
    c.bench_function("stats/norm_ppf", |b| {
        b.iter(|| black_box(pvtm_stats::special::norm_ppf(black_box(1e-6))))
    });
    c.bench_function("stats/gauss_hermite_48pt_expectation", |b| {
        let gh = GaussHermite::new(48);
        b.iter(|| black_box(gh.expect_gaussian(0.0, 1.0, |x| (x * 0.3).tanh())))
    });
    c.bench_function("stats/importance_sampling_10k", |b| {
        let is = ImportanceSampler::new(vec![3.0, 1.0, 0.5]);
        b.iter(|| black_box(is.probability(10_000, 7, |z| z[0] + 0.3 * z[1] > 3.0)))
    });
}

criterion_group!(
    benches,
    bench_device,
    bench_circuit,
    bench_failure_analysis,
    bench_mc_hot_path,
    bench_bist,
    bench_stats
);
criterion_main!(benches);
