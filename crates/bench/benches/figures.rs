//! Regenerates every figure of the paper's evaluation.
//!
//! Run all: `cargo bench --bench figures`
//! Run one: `cargo bench --bench figures -- fig2a`
//! Quick pass: `PVTM_EFFORT=quick cargo bench --bench figures`
//!
//! Results are printed as tables and written to `results/<id>.json`, plus
//! one JSONL record per figure in `results/figures.jsonl`. With
//! `PVTM_TELEMETRY=full` each figure also writes a
//! `results/<id>.telemetry.json` sidecar (spans, solver counters,
//! Monte-Carlo convergence traces); `PVTM_QUIET=1` suppresses the
//! human-readable tables.

use pvtm::experiments as exp;
use pvtm_bench::{effort_from_env, Reporter};

fn wants(filter: &Option<String>, id: &str) -> bool {
    filter.as_deref().is_none_or(|f| id.contains(f))
}

fn main() {
    // Criterion-style CLI compatibility: ignore --bench and take the first
    // free argument as a substring filter.
    let filter: Option<String> = std::env::args().skip(1).find(|a| !a.starts_with("--"));
    let effort = effort_from_env();
    // Deterministic fault injection (PVTM_FAULT_SEED / PVTM_FAULT_RATE);
    // off unless both are set.
    pvtm_telemetry::fault::init_from_env();
    let mut rep = Reporter::new();
    println!(
        "== pvtm figure reproduction (effort: {effort:?}, telemetry: {}) ==\n",
        pvtm_telemetry::mode().as_str()
    );

    let mut fig2c_result = None;
    let mut fig10_result = None;

    if wants(&filter, "fig2a") {
        rep.figure("fig2a", || exp::fig2a(effort).expect("fig2a failed"));
    }
    if wants(&filter, "fig2b") {
        rep.figure("fig2b", || exp::fig2b(effort).expect("fig2b failed"));
    }
    if wants(&filter, "fig2c") || wants(&filter, "headline") {
        fig2c_result = Some(rep.figure("fig2c", || exp::fig2c(effort).expect("fig2c failed")));
    }
    if wants(&filter, "fig3") {
        rep.figure("fig3", || exp::fig3(effort));
    }
    if wants(&filter, "fig4b") {
        rep.figure("fig4b", || exp::fig4b(effort).expect("fig4b failed"));
    }
    if wants(&filter, "fig5a") {
        rep.figure("fig5a", || exp::fig5a(effort));
    }
    if wants(&filter, "fig5b") {
        rep.figure("fig5b", || exp::fig5b(effort).expect("fig5b failed"));
    }
    if wants(&filter, "fig5c") {
        rep.figure("fig5c", || exp::fig5c(effort).expect("fig5c failed"));
    }
    if wants(&filter, "fig6") {
        rep.figure("fig6", || exp::fig6(effort).expect("fig6 failed"));
    }
    if wants(&filter, "fig8") {
        rep.figure("fig8", || exp::fig8(effort).expect("fig8 failed"));
    }
    if wants(&filter, "fig9") {
        rep.figure("fig9", || exp::fig9(effort).expect("fig9 failed"));
    }
    if wants(&filter, "fig10") || wants(&filter, "headline") {
        fig10_result = Some(rep.figure("fig10", || exp::fig10(effort).expect("fig10 failed")));
    }
    if let (Some(f2c), Some(f10)) = (&fig2c_result, &fig10_result) {
        rep.figure("headline", || exp::headline(f2c, f10));
    }

    // Ablations of the design choices (DESIGN.md §6).
    if wants(&filter, "ablation-monitor") {
        rep.figure("ablation-monitor", || {
            exp::ablation_monitor(effort).expect("ablation-monitor failed")
        });
    }
    if wants(&filter, "ablation-dac") {
        rep.figure("ablation-dac", || {
            exp::ablation_dac(effort).expect("ablation-dac failed")
        });
    }
    if wants(&filter, "ablation-bias") {
        rep.figure("ablation-bias", || {
            exp::ablation_bias_levels(effort).expect("ablation-bias failed")
        });
    }
    if wants(&filter, "ablation-march") {
        rep.figure("ablation-march", || exp::ablation_march(effort));
    }
    if wants(&filter, "scaling") {
        rep.figure("scaling", || exp::scaling(effort).expect("scaling failed"));
    }
    if wants(&filter, "ablation-temperature") {
        rep.figure("ablation-temperature", || exp::ablation_temperature(effort));
    }
    rep.finish();
    println!("done; JSON written to {}", exp::results_dir().display());
}
