//! Regenerates every figure of the paper's evaluation.
//!
//! Run all: `cargo bench --bench figures`
//! Run one: `cargo bench --bench figures -- fig2a`
//! Quick pass: `PVTM_EFFORT=quick cargo bench --bench figures`
//!
//! Results are printed as tables and written to `results/<id>.json`.

use pvtm::experiments as exp;
use pvtm_bench::{effort_from_env, timed};

fn wants(filter: &Option<String>, id: &str) -> bool {
    filter.as_deref().is_none_or(|f| id.contains(f))
}

fn main() {
    // Criterion-style CLI compatibility: ignore --bench and take the first
    // free argument as a substring filter.
    let filter: Option<String> = std::env::args().skip(1).find(|a| !a.starts_with("--"));
    let effort = effort_from_env();
    println!("== pvtm figure reproduction (effort: {effort:?}) ==\n");

    let mut fig2c_result = None;
    let mut fig10_result = None;

    if wants(&filter, "fig2a") {
        let r = timed("fig2a", || exp::fig2a(effort)).expect("fig2a failed");
        println!("{r}");
        exp::save_json("fig2a", &r).expect("write fig2a");
    }
    if wants(&filter, "fig2b") {
        let r = timed("fig2b", || exp::fig2b(effort)).expect("fig2b failed");
        println!("{r}");
        exp::save_json("fig2b", &r).expect("write fig2b");
    }
    if wants(&filter, "fig2c") || wants(&filter, "headline") {
        let r = timed("fig2c", || exp::fig2c(effort)).expect("fig2c failed");
        println!("{r}");
        exp::save_json("fig2c", &r).expect("write fig2c");
        fig2c_result = Some(r);
    }
    if wants(&filter, "fig3") {
        let r = timed("fig3", || exp::fig3(effort));
        println!("{r}");
        exp::save_json("fig3", &r).expect("write fig3");
    }
    if wants(&filter, "fig4b") {
        let r = timed("fig4b", || exp::fig4b(effort)).expect("fig4b failed");
        println!("{r}");
        exp::save_json("fig4b", &r).expect("write fig4b");
    }
    if wants(&filter, "fig5a") {
        let r = timed("fig5a", || exp::fig5a(effort));
        println!("{r}");
        exp::save_json("fig5a", &r).expect("write fig5a");
    }
    if wants(&filter, "fig5b") {
        let r = timed("fig5b", || exp::fig5b(effort)).expect("fig5b failed");
        println!("{r}");
        exp::save_json("fig5b", &r).expect("write fig5b");
    }
    if wants(&filter, "fig5c") {
        let r = timed("fig5c", || exp::fig5c(effort)).expect("fig5c failed");
        println!("{r}");
        exp::save_json("fig5c", &r).expect("write fig5c");
    }
    if wants(&filter, "fig6") {
        let r = timed("fig6", || exp::fig6(effort)).expect("fig6 failed");
        println!("{r}");
        exp::save_json("fig6", &r).expect("write fig6");
    }
    if wants(&filter, "fig8") {
        let r = timed("fig8", || exp::fig8(effort)).expect("fig8 failed");
        println!("{r}");
        exp::save_json("fig8", &r).expect("write fig8");
    }
    if wants(&filter, "fig9") {
        let r = timed("fig9", || exp::fig9(effort)).expect("fig9 failed");
        println!("{r}");
        exp::save_json("fig9", &r).expect("write fig9");
    }
    if wants(&filter, "fig10") || wants(&filter, "headline") {
        let r = timed("fig10", || exp::fig10(effort)).expect("fig10 failed");
        println!("{r}");
        exp::save_json("fig10", &r).expect("write fig10");
        fig10_result = Some(r);
    }
    if let (Some(f2c), Some(f10)) = (&fig2c_result, &fig10_result) {
        let h = exp::headline(f2c, f10);
        println!("{h}");
        exp::save_json("headline", &h).expect("write headline");
    }

    // Ablations of the design choices (DESIGN.md §6).
    if wants(&filter, "ablation-monitor") {
        let r = timed("ablation-monitor", || exp::ablation_monitor(effort))
            .expect("ablation-monitor failed");
        println!("{r}");
        exp::save_json("ablation-monitor", &r).expect("write");
    }
    if wants(&filter, "ablation-dac") {
        let r = timed("ablation-dac", || exp::ablation_dac(effort)).expect("ablation-dac failed");
        println!("{r}");
        exp::save_json("ablation-dac", &r).expect("write");
    }
    if wants(&filter, "ablation-bias") {
        let r = timed("ablation-bias", || exp::ablation_bias_levels(effort))
            .expect("ablation-bias failed");
        println!("{r}");
        exp::save_json("ablation-bias", &r).expect("write");
    }
    if wants(&filter, "ablation-march") {
        let r = timed("ablation-march", || exp::ablation_march(effort));
        println!("{r}");
        exp::save_json("ablation-march", &r).expect("write");
    }
    if wants(&filter, "scaling") {
        let r = timed("scaling", || exp::scaling(effort)).expect("scaling failed");
        println!("{r}");
        exp::save_json("scaling", &r).expect("write");
    }
    if wants(&filter, "ablation-temperature") {
        let r = timed("ablation-temperature", || exp::ablation_temperature(effort));
        println!("{r}");
        exp::save_json("ablation-temperature", &r).expect("write");
    }
    println!("done; JSON written to {}", exp::results_dir().display());
}
