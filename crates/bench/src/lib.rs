//! Experiment-harness support for the `pvtm` workspace benches.
//!
//! The real content lives in the two bench targets:
//!
//! - `benches/figures.rs` (`cargo bench --bench figures`) regenerates every
//!   figure of the paper and writes `results/<id>.json`;
//! - `benches/perf.rs` (`cargo bench --bench perf`) runs criterion
//!   performance benchmarks of the substrates.

use std::time::Instant;

/// Runs a closure, printing its wall-clock duration with a label.
///
/// # Example
///
/// ```
/// let value = pvtm_bench::timed("answer", || 42);
/// assert_eq!(value, 42);
/// ```
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!(
        "[{label}] completed in {:.1} s",
        start.elapsed().as_secs_f64()
    );
    out
}

/// Selects the experiment effort from the `PVTM_EFFORT` environment
/// variable (`quick` → quick; anything else → full).
pub fn effort_from_env() -> pvtm::experiments::Effort {
    match std::env::var("PVTM_EFFORT").as_deref() {
        Ok("quick") => pvtm::experiments::Effort::quick(),
        _ => pvtm::experiments::Effort::full(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_the_value() {
        assert_eq!(timed("t", || 7), 7);
    }
}
