//! Experiment-harness support for the `pvtm` workspace benches.
//!
//! The real content lives in the two bench targets:
//!
//! - `benches/figures.rs` (`cargo bench --bench figures`) regenerates every
//!   figure of the paper and writes `results/<id>.json`;
//! - `benches/perf.rs` (`cargo bench --bench perf`) runs criterion
//!   performance benchmarks of the substrates.

use std::fmt::Display;
use std::io::Write as _;
use std::path::Path;

use pvtm_telemetry::clock::Stopwatch;
use pvtm_telemetry::json::{obj, Value};
use serde::Serialize;

/// Runs a closure, printing its wall-clock duration with a label. The
/// duration reads `0.0` when the telemetry clock is gated off
/// (`PVTM_TELEMETRY_CLOCK=off`), keeping harness output reproducible.
///
/// # Example
///
/// ```
/// let value = pvtm_bench::timed("answer", || 42);
/// assert_eq!(value, 42);
/// ```
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let watch = Stopwatch::started();
    let out = f();
    eprintln!("[{label}] completed in {:.1} s", watch.elapsed_secs());
    out
}

/// Per-figure record kept for the end-of-run summary table.
#[derive(Debug, Clone)]
pub struct FigureRun {
    /// Figure id (`fig2a`, `scaling`, ...).
    pub id: String,
    /// Wall-clock seconds (0 when the telemetry clock is disabled, so
    /// machine-readable outputs stay byte-identical across runs).
    pub seconds: f64,
    /// DC solves spent, from the merged telemetry solver counters.
    pub solves: u64,
    /// Warm-start hit rate over those solves.
    pub warm_hit_rate: f64,
    /// Newton iterations spent.
    pub newton_iterations: u64,
}

/// Figure-run reporter: times each experiment, snapshots its telemetry,
/// writes `results/<id>.json`, a `results/<id>.telemetry.json` sidecar in
/// full mode, and one JSONL record per figure to `results/figures.jsonl`.
///
/// Human-readable tables go to stdout unless `PVTM_QUIET=1`, which keeps
/// only the per-figure telemetry summary lines and the final compact
/// table.
#[derive(Debug, Default)]
pub struct Reporter {
    quiet: bool,
    runs: Vec<FigureRun>,
    /// Live metrics server (opt-in via `PVTM_METRICS_ADDR`); held for the
    /// whole run and shut down gracefully when the reporter drops at run
    /// finalize. `None` on the deterministic (knob-unset) path.
    metrics: Option<pvtm_telemetry::serve::ServerHandle>,
}

impl Reporter {
    /// Creates a reporter, reading `PVTM_QUIET` from the environment and
    /// starting the live metrics server when `PVTM_METRICS_ADDR` is set
    /// (the bound address — useful with port 0 — is written to
    /// `<results>/metrics.addr` for scrapers to discover).
    pub fn new() -> Self {
        let metrics = pvtm_telemetry::serve::start_from_env();
        if let Some(server) = &metrics {
            let dir = pvtm::experiments::results_dir();
            let _ = std::fs::create_dir_all(&dir);
            let _ = std::fs::write(dir.join("metrics.addr"), format!("{}\n", server.addr()));
            eprintln!("[metrics] serving http://{}/metrics", server.addr());
        }
        Self {
            quiet: std::env::var("PVTM_QUIET").as_deref() == Ok("1"),
            runs: Vec::new(),
            metrics,
        }
    }

    /// The live metrics address, when a server is running.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics.as_ref().map(|s| s.addr())
    }

    /// Whether human-readable figure tables are suppressed.
    pub fn quiet(&self) -> bool {
        self.quiet
    }

    /// Runs one figure: resets telemetry, executes `f`, snapshots the
    /// report, persists result JSON + sidecars + the finalized event
    /// journal, and returns the value.
    pub fn figure<T: Display + Serialize>(&mut self, id: &str, f: impl FnOnce() -> T) -> T {
        pvtm_telemetry::reset();
        // Open the live event journal before the figure runs: a killed run
        // keeps the arrival-order partial record; a completed figure gets
        // the canonical (sorted, densely renumbered) rewrite below.
        let journal_open = if pvtm_telemetry::is_enabled() {
            let dir = pvtm::experiments::results_dir();
            let _ = std::fs::create_dir_all(&dir);
            pvtm_telemetry::events::open_journal(&dir.join(format!("{id}.events.jsonl")), id)
                .unwrap_or(false)
        } else {
            false
        };
        // A gated-off stopwatch reports 0.0 s, keeping every
        // machine-readable output byte-identical across runs.
        let watch = Stopwatch::started();
        let value = f();
        let seconds = watch.elapsed_secs();
        let report = pvtm_telemetry::snapshot();
        let journal_path = if journal_open {
            pvtm_telemetry::events::finalize_journal(&[
                ("solves", Value::Num(report.solver.solves as f64)),
                ("quarantined", Value::Num(report.quarantine.len() as f64)),
            ])
            .expect("finalize event journal")
        } else {
            None
        };

        let result_path = pvtm::experiments::save_json(id, &value).expect("write result JSON");
        let (telemetry_path, trace_path) = if report.mode == pvtm_telemetry::Mode::Full {
            let path = pvtm::experiments::results_dir().join(format!("{id}.telemetry.json"));
            std::fs::write(&path, report.to_json_pretty(id)).expect("write telemetry sidecar");
            let tpath = pvtm::experiments::results_dir().join(format!("{id}.trace_events.json"));
            std::fs::write(&tpath, report.to_trace_events_json(id)).expect("write trace events");
            (Some(path), Some(tpath))
        } else {
            (None, None)
        };
        self.append_jsonl(
            id,
            seconds,
            &report,
            &result_path,
            telemetry_path.as_deref(),
            trace_path.as_deref(),
            journal_path.as_deref(),
        );

        if !self.quiet {
            println!("{value}");
        }
        if report.mode >= pvtm_telemetry::Mode::Summary {
            println!("{}", report.summary_line(id));
        }
        eprintln!("[{id}] completed in {seconds:.1} s");

        self.runs.push(FigureRun {
            id: id.to_string(),
            seconds,
            solves: report.solver.solves,
            warm_hit_rate: report.solver.warm_hit_rate,
            newton_iterations: report.solver.newton_iterations,
        });
        value
    }

    #[allow(clippy::too_many_arguments)]
    fn append_jsonl(
        &self,
        id: &str,
        seconds: f64,
        report: &pvtm_telemetry::Report,
        result_path: &Path,
        telemetry_path: Option<&Path>,
        trace_path: Option<&Path>,
        journal_path: Option<&Path>,
    ) {
        let line = obj(vec![
            ("id", Value::Str(id.to_string())),
            ("seconds", Value::Num(seconds)),
            ("mode", Value::Str(report.mode.as_str().to_string())),
            ("solves", Value::Num(report.solver.solves as f64)),
            ("warm_hit_rate", Value::Num(report.solver.warm_hit_rate)),
            (
                "newton_iterations",
                Value::Num(report.solver.newton_iterations as f64),
            ),
            ("result", Value::Str(result_path.display().to_string())),
            (
                "telemetry",
                match telemetry_path {
                    Some(p) => Value::Str(p.display().to_string()),
                    None => Value::Null,
                },
            ),
            (
                "trace_events",
                match trace_path {
                    Some(p) => Value::Str(p.display().to_string()),
                    None => Value::Null,
                },
            ),
            (
                "events",
                match journal_path {
                    Some(p) => Value::Str(p.display().to_string()),
                    None => Value::Null,
                },
            ),
        ]);
        let dir = pvtm::experiments::results_dir();
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("figures.jsonl");
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open figures.jsonl");
        // One write_all + flush per record: a `writeln!` can issue several
        // partial writes, so a figure killed mid-append could leave a torn
        // line; this way the record is durable the moment the figure ends.
        let mut rec = line.to_json();
        rec.push('\n');
        file.write_all(rec.as_bytes())
            .expect("append figures.jsonl");
        file.flush().expect("flush figures.jsonl");
    }

    /// The per-figure records accumulated so far.
    pub fn runs(&self) -> &[FigureRun] {
        &self.runs
    }

    /// Prints the compact end-of-run summary table.
    pub fn finish(&self) {
        if self.runs.is_empty() {
            return;
        }
        println!("\n== figure summary ==");
        println!(
            "{:<22} {:>9} {:>9} {:>7} {:>9}",
            "id", "seconds", "solves", "warm%", "newton"
        );
        for r in &self.runs {
            println!(
                "{:<22} {:>9.1} {:>9} {:>7.1} {:>9}",
                r.id,
                r.seconds,
                r.solves,
                100.0 * r.warm_hit_rate,
                r.newton_iterations
            );
        }
    }
}

/// Selects the experiment effort from the `PVTM_EFFORT` environment
/// variable (`quick` → quick; anything else → full).
pub fn effort_from_env() -> pvtm::experiments::Effort {
    match std::env::var("PVTM_EFFORT").as_deref() {
        Ok("quick") => pvtm::experiments::Effort::quick(),
        _ => pvtm::experiments::Effort::full(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_the_value() {
        assert_eq!(timed("t", || 7), 7);
    }

    #[test]
    fn reporter_writes_result_json_and_jsonl() {
        let dir = std::env::temp_dir().join("pvtm-bench-reporter-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("PVTM_RESULTS_DIR", &dir);
        let mut rep = Reporter::new();
        let v = rep.figure("unit-test-figure", || 3.5f64);
        std::env::remove_var("PVTM_RESULTS_DIR");
        assert_eq!(v, 3.5);
        assert_eq!(rep.runs().len(), 1);
        assert_eq!(rep.runs()[0].id, "unit-test-figure");
        assert!(dir.join("unit-test-figure.json").is_file());
        let jsonl = std::fs::read_to_string(dir.join("figures.jsonl")).unwrap();
        let rec = pvtm_telemetry::json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(
            rec.get("id").and_then(Value::as_str),
            Some("unit-test-figure")
        );
        // Telemetry defaults to off here, so no sidecar or journal is
        // written.
        assert_eq!(rec.get("telemetry"), Some(&Value::Null));
        assert_eq!(rec.get("events"), Some(&Value::Null));
        assert!(!dir.join("unit-test-figure.telemetry.json").exists());
        assert!(!dir.join("unit-test-figure.events.jsonl").exists());
        let _ = std::fs::remove_dir_all(dir);
    }
}
