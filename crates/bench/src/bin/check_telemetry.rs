//! CI gate for telemetry sidecars.
//!
//! Usage: `check_telemetry <sidecar.json> [min_warm_hit_rate]`
//!
//! Validates that a `results/<id>.telemetry.json` sidecar written by the
//! `figures` bench is well-formed and that the run it describes is
//! healthy: the solver actually ran, the warm-start hit rate clears the
//! floor, and at least one Monte-Carlo convergence trace was recorded.
//! Exits non-zero with a diagnostic on the first violation.

use std::process::ExitCode;

use pvtm_telemetry::json::{self, Value};

fn fail(msg: &str) -> ExitCode {
    eprintln!("check_telemetry: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        return fail("usage: check_telemetry <sidecar.json> [min_warm_hit_rate]");
    };
    let min_warm: f64 = match args.next() {
        Some(s) => match s.parse() {
            Ok(v) => v,
            Err(_) => return fail(&format!("bad warm-hit-rate floor {s:?}")),
        },
        None => 0.0,
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let doc: Value = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => return fail(&format!("malformed JSON in {path}: {e}")),
    };

    // v1 sidecars predate the numeric `schema_version` field; all read fine.
    match doc.get("schema").and_then(Value::as_str) {
        Some("pvtm-telemetry/1" | "pvtm-telemetry/2" | "pvtm-telemetry/3") => {}
        other => return fail(&format!("unexpected schema {other:?}")),
    }
    let Some(id) = doc.get("id").and_then(Value::as_str) else {
        return fail("missing id");
    };

    let Some(solver) = doc.get("solver") else {
        return fail("missing solver section");
    };
    let solves = solver.get("solves").and_then(Value::as_u64).unwrap_or(0);
    if solves == 0 {
        return fail("no DC solves recorded — instrumentation did not run");
    }
    let warm = solver
        .get("warm_hit_rate")
        .and_then(Value::as_f64)
        .unwrap_or(f64::NAN);
    if !(warm >= min_warm && warm <= 1.0) {
        return fail(&format!(
            "warm-hit rate {warm:.3} outside [{min_warm}, 1] ({solves} solves)"
        ));
    }

    let traces = doc.get("traces").and_then(Value::as_array);
    let trace_ok = traces.is_some_and(|ts| {
        ts.iter().any(|t| {
            t.get("points").and_then(Value::as_array).is_some_and(|ps| {
                !ps.is_empty()
                    && ps.iter().all(|p| {
                        p.get("samples").and_then(Value::as_u64).unwrap_or(0) > 0
                            && p.get("value").and_then(Value::as_f64).is_some()
                    })
            })
        })
    });
    if !trace_ok {
        return fail("no Monte-Carlo convergence trace with valid points");
    }

    if doc.get("mode").and_then(Value::as_str) == Some("full") {
        let spans = doc.get("spans").and_then(Value::as_array);
        if spans.is_none_or(|s| s.is_empty()) {
            return fail("full mode but no spans recorded");
        }
    }

    println!(
        "check_telemetry: OK: {id} — {solves} solves, warm-hit {:.1}%, traces present",
        100.0 * warm
    );
    ExitCode::SUCCESS
}
