//! Snapshot-consistency under fire: a scraper thread hammers
//! [`pvtm_telemetry::snapshot::live`] while an [`ImportanceSampler`] run
//! records chunks from rayon workers. Every captured snapshot must be
//! internally consistent:
//!
//! - `health_chunks == chunks_done` — the estimator pairs each chunk's
//!   moments with its health record inside one `update_scope`, so no
//!   scrape may ever observe one half of the pair (the torn state the
//!   seqlock exists to prevent);
//! - `ess` equals `(Σw)²/Σw²` recomputed from the snapshot's own weight
//!   moments, bit-identical — the snapshot is self-describing;
//! - `chunks_done` is monotone non-decreasing across consecutive scrapes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use pvtm_stats::ImportanceSampler;
use pvtm_telemetry as tm;

fn lock() -> MutexGuard<'static, ()> {
    // Telemetry state is process-global; serialize the tests in this binary.
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn concurrent_scrapes_always_see_consistent_estimator_state() {
    let _g = lock();
    tm::set_mode(tm::Mode::Full);
    tm::set_clock_enabled(false);
    tm::reset();

    const TRACE: &str = "mc.live_scrape";
    let stop = AtomicBool::new(false);
    let snapshots = std::thread::scope(|scope| {
        let scraper = scope.spawn(|| {
            let mut taken = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                taken.push(tm::snapshot::live());
                std::thread::yield_now();
            }
            // One final scrape after the run completed.
            taken.push(tm::snapshot::live());
            taken
        });

        {
            let _t = tm::trace_scope(TRACE);
            let sampler = ImportanceSampler::new(vec![3.0]);
            // 24 chunks of 4096: enough write traffic that scrapes land
            // between, before, and after chunk records.
            let est = sampler.probability(24 * 4096, 7, |z| z[0] > 3.0);
            assert!(est.value > 0.0, "the shifted event must be observed");
        }
        stop.store(true, Ordering::SeqCst);
        scraper.join().expect("scraper thread")
    });

    assert!(!snapshots.is_empty());
    let mut last_chunks = 0u64;
    let mut observed_rows = 0usize;
    for snap in &snapshots {
        let Some(p) = snap.progress.iter().find(|p| p.name == TRACE) else {
            continue; // scraped before mc.start landed
        };
        observed_rows += 1;
        assert_eq!(
            p.health_chunks, p.chunks_done,
            "torn scrape: chunk moments and health must move together \
             (epoch {})",
            snap.epoch
        );
        #[allow(clippy::float_cmp)] // recomputing the exact same expression
        {
            let expect = if p.weight_sq_sum > 0.0 {
                p.weight_sum * p.weight_sum / p.weight_sq_sum
            } else {
                0.0
            };
            assert_eq!(
                p.ess, expect,
                "ess must be recomputable from the snapshot's own moments"
            );
        }
        assert!(
            p.chunks_done >= last_chunks,
            "chunks_done went backwards: {} -> {}",
            last_chunks,
            p.chunks_done
        );
        last_chunks = p.chunks_done;
        assert!(p.chunks_done <= p.chunks_total);
        assert_eq!(p.chunks_total, 24);
        assert_eq!(p.samples_total, 24 * 4096);
    }
    assert!(observed_rows > 0, "no scrape saw the running estimator");
    // The post-join scrape must see the completed run.
    let end = snapshots
        .last()
        .and_then(|s| s.progress.iter().find(|p| p.name == TRACE))
        .expect("final snapshot has the trace");
    assert_eq!(end.chunks_done, 24);
    assert_eq!(end.health_chunks, 24);

    tm::set_mode(tm::Mode::Off);
}
