//! Statistical machinery underpinning the process-variation analyses of the
//! SOCC 2006 reproduction.
//!
//! The crate provides, with no heavyweight numerical dependencies:
//!
//! - [`special`] — special functions: `erf`/`erfc`, the standard-normal CDF
//!   [`special::norm_cdf`] and quantile [`special::norm_ppf`], `ln Γ`, and
//!   log-domain binomial tails used by the redundancy yield model.
//! - [`summary`] — numerically stable streaming moments ([`Summary`]).
//! - [`histogram`] — fixed-range histograms and exact sample quantiles, used
//!   to reproduce the leakage-distribution figures.
//! - [`quadrature`] — Gauss–Hermite quadrature for expectations over the
//!   inter-die Gaussian (paper Eq. (4)).
//! - [`montecarlo`] — parallel Monte-Carlo estimation and mean-shifted
//!   importance sampling for rare failure events.
//! - [`distribution`] — thin Normal / LogNormal types exposing `cdf`, `ppf`
//!   and sampling in one place.
//! - [`ks`] — one-sample Kolmogorov–Smirnov test, used by the test-suite to
//!   validate sampled distributions against their analytic forms.
//! - [`rng`] — deterministic seeding helpers so every experiment is
//!   reproducible.
//!
//! # Example
//!
//! ```
//! use pvtm_stats::special::{norm_cdf, norm_ppf};
//!
//! // Round-trip through the normal CDF and its inverse.
//! let p = norm_cdf(1.3);
//! assert!((norm_ppf(p) - 1.3).abs() < 1e-9);
//! ```

pub mod distribution;
pub mod histogram;
pub mod ks;
pub mod montecarlo;
pub mod quadrature;
pub mod rng;
pub mod special;
pub mod summary;

pub use distribution::{LogNormal, Normal};
pub use histogram::Histogram;
pub use montecarlo::{
    mc_mean, mc_probability, ImportanceSampler, McEstimate, QuarantinedEstimate, SampleOutcome,
};
pub use quadrature::GaussHermite;
pub use summary::Summary;
