//! Special functions: error function family, `ln Γ`, normal CDF/quantile,
//! and log-domain binomial machinery.
//!
//! Everything here is implemented from first principles (incomplete-gamma
//! series/continued fractions, the Lanczos approximation, Acklam's rational
//! quantile approximation with a Halley refinement) so the workspace carries
//! no numerical dependency. Accuracy is close to machine precision; the unit
//! tests pin values against independently computed references.

/// Natural log of √(2π), used by normal densities.
pub const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_7;

/// Square root of 2.
pub const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Lanczos approximation to `ln Γ(x)` for `x > 0`.
///
/// Uses the classic g = 5, n = 6 coefficient set (Numerical Recipes), which
/// is accurate to better than 2e-10 everywhere we use it.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection formula is intentionally not
/// implemented; all callers in this workspace use positive arguments).
///
/// # Example
///
/// ```
/// // Γ(5) = 24
/// assert!((pvtm_stats::special::ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const COF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// Regularized lower incomplete gamma `P(a, x)` via series expansion.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

/// Regularized upper incomplete gamma `Q(a, x)` via continued fraction
/// (modified Lentz algorithm).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain error: a={a}, x={x}");
    // pvtm-lint: allow(no-float-eq) gamma_p(a, 0) is exactly zero by definition
    if x == 0.0 {
        0.0
    } else if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Error function `erf(x)`, accurate to ~1e-15.
///
/// # Example
///
/// ```
/// assert!((pvtm_stats::special::erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        -erf(-x)
    // pvtm-lint: allow(no-float-eq) erf(0) is exactly zero by definition
    } else if x == 0.0 {
        0.0
    } else {
        gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`, accurate for large
/// positive `x` where `1 - erf(x)` would underflow to cancellation.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    // pvtm-lint: allow(no-float-eq) erfc(0) is exactly one by definition
    } else if x == 0.0 {
        1.0
    } else if x * x < 1.5 {
        1.0 - gamma_p_series(0.5, x * x)
    } else {
        gamma_q_cf(0.5, x * x)
    }
}

/// Standard normal probability density function.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x - LN_SQRT_2PI).exp()
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// This is the `Φ(·)` of the paper's Eq. (3).
///
/// # Example
///
/// ```
/// use pvtm_stats::special::norm_cdf;
/// assert!((norm_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!(norm_cdf(-40.0) >= 0.0);
/// ```
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Natural log of the standard normal CDF, stable far into the lower tail.
pub fn ln_norm_cdf(x: f64) -> f64 {
    if x > -10.0 {
        norm_cdf(x).ln()
    } else {
        // Asymptotic expansion of the Mills ratio for the deep tail.
        let x2 = x * x;
        -0.5 * x2 - LN_SQRT_2PI - (-x).ln() + (1.0 - 1.0 / x2 + 3.0 / (x2 * x2)).ln()
    }
}

/// Standard normal quantile function `Φ⁻¹(p)` (a.k.a. probit).
///
/// Uses Acklam's rational approximation followed by one Halley refinement
/// step, giving full double precision over `p ∈ (0, 1)`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` (0 and 1 excluded — they map to ±∞).
///
/// # Example
///
/// ```
/// use pvtm_stats::special::{norm_cdf, norm_ppf};
/// for &p in &[1e-9, 0.01, 0.3, 0.5, 0.9, 1.0 - 1e-9] {
///     assert!((norm_cdf(norm_ppf(p)) - p).abs() < 1e-12 * p.max(1e-3));
/// }
/// ```
pub fn norm_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_ppf requires p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln_1p_neg()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    };

    // One step of Halley's method drives the result to machine precision.
    let e = norm_cdf(x) - p;
    let u = e * (LN_SQRT_2PI + 0.5 * x * x).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Internal helper so the upper-tail branch of [`norm_ppf`] reads naturally.
trait Ln1pNeg {
    fn ln_1p_neg(self) -> f64;
}
impl Ln1pNeg for f64 {
    /// `ln(x)` written as `ln1p(x - 1)` for `x` near 1 (better conditioning).
    fn ln_1p_neg(self) -> f64 {
        (self - 1.0).ln_1p()
    }
}

/// `ln C(n, k)` — log binomial coefficient.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_choose requires k <= n, got k={k}, n={n}");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Log of the binomial PMF `P[X = k]` for `X ~ Binomial(n, p)`.
///
/// Stable for tiny `p` (down to 1e-300) where the direct formula underflows.
pub fn ln_binomial_pmf(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must lie in [0,1], got {p}");
    // pvtm-lint: allow(no-float-eq) degenerate Bernoulli endpoint has an exact log-pmf
    if p == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    // pvtm-lint: allow(no-float-eq) degenerate Bernoulli endpoint has an exact log-pmf
    if p == 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (-p).ln_1p()
}

/// Lower binomial tail `P[X <= k]` for `X ~ Binomial(n, p)`, evaluated by
/// log-domain summation.
///
/// This is the memory-survival probability of the paper's redundancy model:
/// a chip survives when the number of faulty columns is at most the number
/// of redundant columns.
///
/// # Example
///
/// ```
/// use pvtm_stats::special::binomial_cdf;
/// // With p = 0 no column ever fails.
/// assert_eq!(binomial_cdf(512, 8, 0.0), 1.0);
/// // CDF at k = n is exactly 1.
/// assert!((binomial_cdf(16, 16, 0.3) - 1.0).abs() < 1e-12);
/// ```
pub fn binomial_cdf(n: u64, k: u64, p: f64) -> f64 {
    if k >= n {
        return 1.0;
    }
    // Sum in the log domain with the running max trick.
    let mut terms = Vec::with_capacity((k + 1) as usize);
    let mut max_ln = f64::NEG_INFINITY;
    for i in 0..=k {
        let l = ln_binomial_pmf(n, i, p);
        if l > max_ln {
            max_ln = l;
        }
        terms.push(l);
    }
    // pvtm-lint: allow(no-float-eq) NEG_INFINITY is the assigned empty-accumulator sentinel
    if max_ln == f64::NEG_INFINITY {
        return 0.0;
    }
    let sum: f64 = terms.iter().map(|l| (l - max_ln).exp()).sum();
    (max_ln + sum.ln()).exp().min(1.0)
}

/// Survival function `P[X > k]` of the binomial, stable when the tail is
/// tiny (sums the complementary side when that is cheaper / more accurate).
pub fn binomial_sf(n: u64, k: u64, p: f64) -> f64 {
    if k >= n {
        return 0.0;
    }
    let mean = n as f64 * p;
    if (k as f64) < mean {
        // The upper tail dominates; 1 - CDF is well conditioned.
        1.0 - binomial_cdf(n, k, p)
    } else {
        // Sum the upper tail directly in the log domain.
        let mut terms = Vec::new();
        let mut max_ln = f64::NEG_INFINITY;
        // Truncate once terms fall 60 nats below the running max.
        for i in (k + 1)..=n {
            let l = ln_binomial_pmf(n, i, p);
            if l > max_ln {
                max_ln = l;
            }
            terms.push(l);
            if l < max_ln - 60.0 && i > k + 4 {
                break;
            }
        }
        // pvtm-lint: allow(no-float-eq) NEG_INFINITY is the assigned empty-accumulator sentinel
        if max_ln == f64::NEG_INFINITY {
            return 0.0;
        }
        let sum: f64 = terms.iter().map(|l| (l - max_ln).exp()).sum();
        (max_ln + sum.ln()).exp().min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            fact *= n as f64;
            let err = (ln_gamma(n as f64 + 1.0) - fact.ln()).abs();
            assert!(err < 1e-9, "ln_gamma({}) err {err}", n + 1);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun table 7.1.
        let cases = [
            (0.5, 0.520_499_877_813_046_5),
            (1.0, 0.842_700_792_949_714_9),
            (2.0, 0.995_322_265_018_952_7),
            (3.0, 0.999_977_909_503_001_4),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-12, "erf({x})");
            assert!((erf(-x) + want).abs() < 1e-12, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_deep_tail_is_positive_and_tiny() {
        let v = erfc(8.0);
        assert!(v > 0.0 && v < 1e-28, "erfc(8) = {v}");
        // Known: erfc(8) ≈ 1.1224297172982928e-29
        assert!((v / 1.122_429_717_298_292_8e-29 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn norm_cdf_symmetry() {
        for &x in &[0.1, 0.7, 1.5, 3.0, 5.0] {
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn norm_cdf_reference_values() {
        assert!((norm_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
        assert!((norm_cdf(-3.0) - 1.349_898_031_630_094_6e-3).abs() < 1e-15);
    }

    #[test]
    fn norm_ppf_round_trip() {
        for i in 1..400 {
            let p = i as f64 / 400.0;
            let x = norm_ppf(p);
            assert!((norm_cdf(x) - p).abs() < 1e-13, "p={p}");
        }
    }

    #[test]
    fn norm_ppf_extreme_tails() {
        let x = norm_ppf(1e-12);
        assert!((norm_cdf(x) / 1e-12 - 1.0).abs() < 1e-8);
        let y = norm_ppf(1.0 - 1e-12);
        assert!(y > 6.9 && y < 7.1);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn norm_ppf_rejects_zero() {
        let _ = norm_ppf(0.0);
    }

    #[test]
    fn ln_norm_cdf_continuous_at_switch() {
        let a = ln_norm_cdf(-9.999);
        let b = ln_norm_cdf(-10.001);
        assert!((a - b).abs() < 0.05, "discontinuity at switch: {a} vs {b}");
    }

    #[test]
    fn choose_small_values() {
        assert!((ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_choose(10, 5).exp() - 252.0).abs() < 1e-8);
        assert_eq!(ln_choose(7, 0), 0.0);
        assert_eq!(ln_choose(7, 7), 0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 40;
        let p = 0.37;
        let total: f64 = (0..=n).map(|k| ln_binomial_pmf(n, k, p).exp()).sum();
        // Limited by the ~1e-10 accuracy of the Lanczos ln_gamma.
        assert!((total - 1.0).abs() < 1e-8, "total={total}");
    }

    #[test]
    fn binomial_cdf_and_sf_complement() {
        for &(n, k, p) in &[(512u64, 8u64, 1e-3), (100, 50, 0.5), (64, 3, 0.02)] {
            let c = binomial_cdf(n, k, p);
            let s = binomial_sf(n, k, p);
            assert!((c + s - 1.0).abs() < 1e-10, "n={n} k={k} p={p}");
        }
    }

    #[test]
    fn binomial_sf_tiny_p_is_accurate() {
        // With tiny p the survival P[X > 0] = 1 - (1-p)^n ≈ np.
        let n = 1000u64;
        let p = 1e-9;
        let sf = binomial_sf(n, 0, p);
        let exact = 1.0 - (1.0 - p).powi(n as i32);
        assert!((sf / exact - 1.0).abs() < 1e-6, "sf={sf} exact={exact}");
    }

    #[test]
    fn binomial_degenerate_probabilities() {
        assert_eq!(binomial_cdf(10, 3, 0.0), 1.0);
        assert_eq!(binomial_sf(10, 3, 0.0), 0.0);
        assert_eq!(binomial_cdf(10, 3, 1.0), 0.0);
        assert_eq!(binomial_sf(10, 3, 1.0), 1.0);
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert!((gamma_p(1.0, 30.0) - 1.0).abs() < 1e-12);
        // P(1, x) = 1 - e^{-x}
        assert!((gamma_p(1.0, 0.7) - (1.0 - (-0.7f64).exp())).abs() < 1e-12);
    }
}
