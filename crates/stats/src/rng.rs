//! Deterministic RNG seeding utilities.
//!
//! Every experiment in this workspace is reproducible: a single `u64` master
//! seed plus a stream index fully determines the random sequence. Substreams
//! are decorrelated by running the (seed, stream) pair through SplitMix64,
//! whose output is a bijective avalanche mix — adjacent stream indices yield
//! unrelated seeds.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step: maps `x` to a well-mixed 64-bit value.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent RNG for `(seed, stream)`.
///
/// # Example
///
/// ```
/// use pvtm_stats::rng::substream;
/// use rand::Rng;
///
/// let a: u64 = substream(1, 0).gen();
/// let b: u64 = substream(1, 1).gen();
/// let a2: u64 = substream(1, 0).gen();
/// assert_ne!(a, b);   // different streams differ
/// assert_eq!(a, a2);  // same stream reproduces
/// ```
pub fn substream(seed: u64, stream: u64) -> StdRng {
    let mixed = splitmix64(splitmix64(seed) ^ stream.rotate_left(17));
    StdRng::seed_from_u64(mixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        // Hamming distance between outputs for adjacent inputs should be
        // large (avalanche).
        let d = (splitmix64(1) ^ splitmix64(2)).count_ones();
        assert!(d > 16, "poor avalanche: {d} bits");
    }

    #[test]
    fn substreams_are_reproducible() {
        let xs: Vec<u64> = (0..4).map(|s| substream(99, s).gen()).collect();
        let ys: Vec<u64> = (0..4).map(|s| substream(99, s).gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn substreams_differ_across_seeds() {
        let a: u64 = substream(1, 0).gen();
        let b: u64 = substream(2, 0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn substream_means_are_unbiased() {
        // Aggregate over many substreams: mean of U(0,1) ≈ 0.5.
        let mut total = 0.0;
        let n = 2000;
        for s in 0..n {
            let mut rng = substream(7, s);
            total += rng.gen::<f64>();
        }
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }
}
