//! Gauss–Hermite quadrature for expectations over Gaussian variables.
//!
//! The paper's yield integrals (Eq. (1) and Eq. (4)) are expectations of a
//! per-corner quantity over the inter-die Vt distribution, which is modelled
//! as a zero-mean Gaussian. Gauss–Hermite quadrature evaluates those
//! integrals with a handful of deterministic corner evaluations instead of
//! a Monte-Carlo sweep, which keeps the yield-vs-sigma figures smooth.

/// Gauss–Hermite rule: nodes and weights for
/// `∫ f(t) e^{-t²} dt ≈ Σ wᵢ f(tᵢ)`.
///
/// Nodes are computed at construction by Newton iteration on the physicists'
/// Hermite polynomials (no tables), so any order is available.
///
/// # Example
///
/// ```
/// use pvtm_stats::GaussHermite;
///
/// let gh = GaussHermite::new(24);
/// // E[X²] of a standard normal is 1.
/// let second_moment = gh.expect_gaussian(0.0, 1.0, |x| x * x);
/// assert!((second_moment - 1.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussHermite {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl GaussHermite {
    /// Builds an `n`-point rule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 256` (the Newton initialization is tuned
    /// for practical orders; larger rules are never needed here).
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n <= 256, "unsupported Gauss-Hermite order {n}");
        // Newton iteration adapted from Numerical Recipes `gauher`.
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        let nf = n as f64;
        let mut z = 0.0f64;
        for i in 0..m {
            // Initial guesses for the roots, largest first.
            z = match i {
                0 => (2.0 * nf + 1.0).sqrt() - 1.85575 * (2.0 * nf + 1.0).powf(-1.0 / 6.0),
                1 => z - 1.14 * nf.powf(0.426) / z,
                2 => 1.86 * z - 0.86 * nodes[0],
                3 => 1.91 * z - 0.91 * nodes[1],
                _ => 2.0 * z - nodes[i - 2],
            };
            let mut pp = 0.0;
            for _ in 0..200 {
                // Evaluate H_n via the recurrence, in the "normalized" form
                // used by Numerical Recipes to avoid overflow.
                let mut p1 = std::f64::consts::PI.powf(-0.25);
                let mut p2 = 0.0;
                for j in 0..n {
                    let p3 = p2;
                    p2 = p1;
                    let jf = j as f64;
                    p1 = z * (2.0 / (jf + 1.0)).sqrt() * p2 - (jf / (jf + 1.0)).sqrt() * p3;
                }
                pp = (2.0 * nf).sqrt() * p2;
                let z1 = z;
                z = z1 - p1 / pp;
                if (z - z1).abs() < 3e-14 {
                    break;
                }
            }
            nodes[i] = z;
            nodes[n - 1 - i] = -z;
            weights[i] = 2.0 / (pp * pp);
            weights[n - 1 - i] = weights[i];
        }
        // Order ascending for readability.
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            nodes[a]
                .partial_cmp(&nodes[b])
                .expect("Hermite nodes are finite by construction")
        });
        let nodes_sorted = idx.iter().map(|&i| nodes[i]).collect();
        let weights_sorted = idx.iter().map(|&i| weights[i]).collect();
        Self {
            nodes: nodes_sorted,
            weights: weights_sorted,
        }
    }

    /// Order of the rule.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the rule has no nodes (never the case after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Raw nodes `tᵢ` of the weight `e^{-t²}`.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Raw weights `wᵢ`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Expectation `E[f(X)]` for `X ~ N(mean, sigma²)`.
    ///
    /// With `sigma == 0` this degenerates to `f(mean)`, which is exactly
    /// what the yield sweeps need at the σ→0 endpoint.
    pub fn expect_gaussian(&self, mean: f64, sigma: f64, mut f: impl FnMut(f64) -> f64) -> f64 {
        // pvtm-lint: allow(no-float-eq) sigma = 0 degenerates the expectation to f(mean) exactly
        if sigma == 0.0 {
            return f(mean);
        }
        let norm = 1.0 / std::f64::consts::PI.sqrt();
        let scale = std::f64::consts::SQRT_2 * sigma;
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&t, &w)| w * f(mean + scale * t))
            .sum::<f64>()
            * norm
    }

    /// The Gaussian-weighted sample points `mean + √2·σ·tᵢ` together with
    /// their normalized probabilities (summing to 1). Useful when the same
    /// corners must be reused across several integrands.
    pub fn gaussian_points(&self, mean: f64, sigma: f64) -> Vec<(f64, f64)> {
        let norm = 1.0 / std::f64::consts::PI.sqrt();
        let scale = std::f64::consts::SQRT_2 * sigma;
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&t, &w)| (mean + scale * t, w * norm))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_sqrt_pi() {
        for &n in &[4usize, 9, 16, 33, 64] {
            let gh = GaussHermite::new(n);
            let sum: f64 = gh.weights().iter().sum();
            assert!(
                (sum - std::f64::consts::PI.sqrt()).abs() < 1e-10,
                "order {n}: weight sum {sum}"
            );
        }
    }

    #[test]
    fn nodes_are_symmetric_and_sorted() {
        let gh = GaussHermite::new(20);
        let nodes = gh.nodes();
        for i in 1..nodes.len() {
            assert!(nodes[i] > nodes[i - 1]);
        }
        for i in 0..nodes.len() {
            assert!((nodes[i] + nodes[nodes.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn integrates_polynomials_exactly() {
        // An n-point rule is exact for polynomials of degree 2n-1.
        let gh = GaussHermite::new(6);
        // E[X^4] = 3 for standard normal.
        let m4 = gh.expect_gaussian(0.0, 1.0, |x| x.powi(4));
        assert!((m4 - 3.0).abs() < 1e-10, "m4={m4}");
        // E[X^6] = 15.
        let m6 = gh.expect_gaussian(0.0, 1.0, |x| x.powi(6));
        assert!((m6 - 15.0).abs() < 1e-9, "m6={m6}");
    }

    #[test]
    fn nonzero_mean_and_sigma() {
        let gh = GaussHermite::new(16);
        let mean = 2.5;
        let sigma = 0.7;
        let m1 = gh.expect_gaussian(mean, sigma, |x| x);
        let m2 = gh.expect_gaussian(mean, sigma, |x| x * x);
        assert!((m1 - mean).abs() < 1e-12);
        assert!((m2 - (mean * mean + sigma * sigma)).abs() < 1e-10);
    }

    #[test]
    fn sigma_zero_degenerates_to_point_evaluation() {
        let gh = GaussHermite::new(8);
        let v = gh.expect_gaussian(1.5, 0.0, |x| x * 10.0);
        assert_eq!(v, 15.0);
    }

    #[test]
    fn expectation_of_normal_cdf_has_closed_form() {
        // E[Φ(X)] for X ~ N(0, σ²) equals Φ(0 / sqrt(1+σ²)) = 0.5.
        let gh = GaussHermite::new(40);
        let v = gh.expect_gaussian(0.0, 2.0, crate::special::norm_cdf);
        assert!((v - 0.5).abs() < 1e-8, "v={v}");
    }

    #[test]
    fn gaussian_points_probabilities_sum_to_one() {
        let gh = GaussHermite::new(12);
        let pts = gh.gaussian_points(0.3, 0.05);
        let total: f64 = pts.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn rejects_order_zero() {
        let _ = GaussHermite::new(0);
    }
}
