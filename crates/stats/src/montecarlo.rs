//! Parallel Monte-Carlo estimation and mean-shifted importance sampling.
//!
//! Failure probabilities of a well-designed SRAM cell sit in the 1e-3…1e-7
//! range, where naive Monte Carlo needs prohibitive sample counts. The
//! [`ImportanceSampler`] shifts the sampling mean of the Gaussian variation
//! vector toward the failure boundary (along the direction found by a
//! sensitivity analysis) and reweights with exact likelihood ratios, which
//! is the standard variance-reduction technique for such rare-event yields.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, StandardNormal};
use rayon::prelude::*;

use crate::summary::Summary;

/// Result of a Monte-Carlo estimation: point estimate plus sampling error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// Point estimate of the target quantity.
    pub value: f64,
    /// Standard error of the estimate.
    pub std_err: f64,
    /// Number of samples used.
    pub samples: u64,
}

impl McEstimate {
    /// Half-width of the ~95 % confidence interval.
    pub fn ci95(&self) -> f64 {
        1.96 * self.std_err
    }

    /// Relative standard error (`std_err / value`), or infinity when the
    /// estimate is zero.
    pub fn rel_err(&self) -> f64 {
        // pvtm-lint: allow(no-float-eq) an exactly zero estimate has no defined relative error
        if self.value == 0.0 {
            f64::INFINITY
        } else {
            self.std_err / self.value.abs()
        }
    }
}

/// Outcome of evaluating one Monte-Carlo sample.
///
/// `Unresolved` is the fail-stop escape hatch: the evaluator could not
/// decide the sample (typically a circuit solve that exhausted the rescue
/// ladder). Unresolved samples are *quarantined* — counted separately and
/// bracketed by both-sided bias bounds — instead of aborting the whole
/// estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleOutcome {
    /// The sample is decisively not in the target event.
    Pass,
    /// The sample is decisively in the target event.
    Fail,
    /// The evaluator could not decide the sample; quarantine it.
    Unresolved,
}

/// Importance-sampling estimate with quarantine accounting.
///
/// Quarantined (unresolved) samples are bracketed both ways: `fail_bound`
/// treats every quarantined sample as a failure (the conservative upper
/// bound, and the value fail-stop callers historically reported), while
/// `pass_bound` treats them all as passes (the lower bound). The true
/// probability lies between the two; their gap is the worst-case bias the
/// quarantine introduces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantinedEstimate {
    /// Estimate with quarantined samples counted as failures (upper bound).
    pub fail_bound: McEstimate,
    /// Estimate with quarantined samples counted as passes (lower bound).
    pub pass_bound: McEstimate,
    /// Number of samples that came back [`SampleOutcome::Unresolved`].
    pub quarantined: u64,
}

impl QuarantinedEstimate {
    /// Fraction of samples quarantined.
    pub fn quarantine_rate(&self) -> f64 {
        self.quarantined as f64 / self.fail_bound.samples.max(1) as f64
    }
}

/// Number of samples per parallel chunk. Large enough to amortize task
/// overhead, small enough to spread across cores.
const CHUNK: u64 = 4096;

/// Captures the active telemetry trace label on the calling thread (worker
/// threads have their own, empty, trace stacks) so chunk closures can
/// record their running moments into it.
fn trace_for_chunks() -> Option<pvtm_telemetry::TraceHandle> {
    pvtm_telemetry::active_trace()
}

/// Records one finished chunk's moments into the enclosing trace scope.
fn record_trace_chunk(trace: &Option<pvtm_telemetry::TraceHandle>, chunk: u64, s: &Summary) {
    if let Some(t) = trace {
        pvtm_telemetry::record_chunk(t, chunk, s.count(), s.mean(), s.m2());
    }
}

/// Journals the estimator's planned work (`mc.start`) before fan-out.
fn record_start(trace: &Option<pvtm_telemetry::TraceHandle>, n: u64, chunks: u64) {
    if let Some(t) = trace {
        pvtm_telemetry::record_mc_start(t, n, chunks);
    }
}

/// Importance-weight health moments of one chunk, accumulated *beside* the
/// estimate arithmetic (never inside it — the reproduced numbers must be
/// bit-identical with health recording on or off).
#[derive(Debug, Clone, Copy, Default)]
struct WeightHealth {
    fails: u64,
    sum: f64,
    sq_sum: f64,
    max: f64,
}

impl WeightHealth {
    fn observe(&mut self, w: f64) {
        self.fails += 1;
        self.sum += w;
        self.sq_sum += w * w;
        self.max = self.max.max(w);
    }

    fn record(&self, trace: &Option<pvtm_telemetry::TraceHandle>, chunk: u64) {
        if let Some(t) = trace {
            pvtm_telemetry::record_chunk_health(
                t,
                chunk,
                pvtm_telemetry::HealthChunk {
                    fails: self.fails,
                    weight_sum: self.sum,
                    weight_sq_sum: self.sq_sum,
                    weight_max: self.max,
                },
            );
        }
    }
}

/// Estimates `E[f(rng)]` with `n` samples, parallelized over chunks with
/// independent deterministic substreams derived from `seed`.
///
/// # Example
///
/// ```
/// use pvtm_stats::mc_mean;
/// use rand::Rng;
///
/// // Mean of U(0,1) is 0.5.
/// let est = mc_mean(100_000, 7, |rng| rng.gen::<f64>());
/// assert!((est.value - 0.5).abs() < 5.0 * est.std_err.max(1e-4));
/// ```
pub fn mc_mean(n: u64, seed: u64, f: impl Fn(&mut StdRng) -> f64 + Sync) -> McEstimate {
    assert!(n > 0, "mc_mean needs at least one sample");
    let chunks = n.div_ceil(CHUNK);
    let trace = trace_for_chunks();
    record_start(&trace, n, chunks);
    let ctx = pvtm_telemetry::parallel_context();
    let summary = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let _adopt = pvtm_telemetry::adopt(&ctx);
            let _span = pvtm_telemetry::span("mc.chunk");
            let mut rng = crate::rng::substream(seed, c);
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(n);
            let mut s = Summary::new();
            for _ in lo..hi {
                s.add(f(&mut rng));
            }
            record_trace_chunk(&trace, c, &s);
            s
        })
        .reduce(Summary::new, |mut a, b| {
            a.merge(&b);
            a
        });
    McEstimate {
        value: summary.mean(),
        std_err: summary.std_err(),
        samples: summary.count(),
    }
}

/// Estimates `P[event(rng)]` with `n` Bernoulli samples.
///
/// The standard error uses the binomial formula, which is tighter than the
/// generic sample variance when the count of successes is small.
pub fn mc_probability(n: u64, seed: u64, event: impl Fn(&mut StdRng) -> bool + Sync) -> McEstimate {
    assert!(n > 0, "mc_probability needs at least one sample");
    let chunks = n.div_ceil(CHUNK);
    let trace = trace_for_chunks();
    record_start(&trace, n, chunks);
    let ctx = pvtm_telemetry::parallel_context();
    let hits: u64 = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let _adopt = pvtm_telemetry::adopt(&ctx);
            let _span = pvtm_telemetry::span("mc.chunk");
            let mut rng = crate::rng::substream(seed, c);
            let lo = c * CHUNK;
            let hi = ((c + 1) * CHUNK).min(n);
            let mut h = 0u64;
            for _ in lo..hi {
                if event(&mut rng) {
                    h += 1;
                }
            }
            if let Some(t) = &trace {
                // Bernoulli moments of the chunk: mean p, M2 = h(1 - p)
                // (a chunk of h ones and nc - h zeros has exactly these).
                let nc = hi - lo;
                let p = h as f64 / nc as f64;
                pvtm_telemetry::record_chunk(t, c, nc, p, h as f64 * (1.0 - p));
            }
            h
        })
        .sum();
    let p = hits as f64 / n as f64;
    McEstimate {
        value: p,
        std_err: (p * (1.0 - p) / n as f64).sqrt(),
        samples: n,
    }
}

/// Mean-shifted importance sampler for rare events over a standard
/// multivariate normal.
///
/// The target is `P[event(z)]` with `z ~ N(0, I_d)`. Samples are drawn from
/// `N(shift, I_d)` instead and each indicator is weighted by the likelihood
/// ratio `exp(-shiftᵀz + ‖shift‖²/2)`, an unbiased estimator with far lower
/// variance when `shift` points at the dominant failure region.
///
/// # Example
///
/// ```
/// use pvtm_stats::ImportanceSampler;
/// use pvtm_stats::special::norm_cdf;
///
/// // P[z0 > 4] ≈ 3.17e-5; estimate with a shift onto the boundary.
/// let is = ImportanceSampler::new(vec![4.0]);
/// let est = is.probability(200_000, 11, |z| z[0] > 4.0);
/// let exact = 1.0 - norm_cdf(4.0);
/// assert!((est.value - exact).abs() < 6.0 * est.std_err);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceSampler {
    shift: Vec<f64>,
    shift_norm2: f64,
}

impl ImportanceSampler {
    /// Creates a sampler with the given mean shift (its length fixes the
    /// dimension `d`).
    ///
    /// # Panics
    ///
    /// Panics if the shift is empty or contains non-finite components.
    pub fn new(shift: Vec<f64>) -> Self {
        assert!(!shift.is_empty(), "importance shift must be non-empty");
        assert!(
            shift.iter().all(|x| x.is_finite()),
            "importance shift must be finite"
        );
        let shift_norm2 = shift.iter().map(|x| x * x).sum();
        Self { shift, shift_norm2 }
    }

    /// Dimension of the sampled vector.
    pub fn dim(&self) -> usize {
        self.shift.len()
    }

    /// The configured mean shift.
    pub fn shift(&self) -> &[f64] {
        &self.shift
    }

    /// Estimates `P[event(z)]` for `z ~ N(0, I_d)` with `n` weighted samples.
    pub fn probability(
        &self,
        n: u64,
        seed: u64,
        event: impl Fn(&[f64]) -> bool + Sync,
    ) -> McEstimate {
        self.probability_init(n, seed, || (), |(), z| event(z))
    }

    /// [`Self::probability`] with per-chunk worker state: `init` runs once
    /// per parallel chunk and its result is passed (mutably) to every event
    /// evaluation of that chunk.
    ///
    /// This is the entry point for stateful evaluators — e.g. compiled
    /// circuit templates whose warm-started solver state must live on one
    /// thread — without giving up chunk-level parallelism. The random
    /// stream is identical to [`Self::probability`] for the same seed, so
    /// the two produce the same estimate for equivalent events.
    pub fn probability_init<S>(
        &self,
        n: u64,
        seed: u64,
        init: impl Fn() -> S + Sync,
        event: impl Fn(&mut S, &[f64]) -> bool + Sync,
    ) -> McEstimate {
        assert!(n > 0, "importance sampling needs at least one sample");
        let d = self.shift.len();
        let chunks = n.div_ceil(CHUNK);
        let trace = trace_for_chunks();
        record_start(&trace, n, chunks);
        let ctx = pvtm_telemetry::parallel_context();
        let summary = (0..chunks)
            .into_par_iter()
            .map(|c| {
                let _adopt = pvtm_telemetry::adopt(&ctx);
                let _span = pvtm_telemetry::span("mc.chunk");
                let mut rng = crate::rng::substream(seed, c);
                let lo = c * CHUNK;
                let hi = ((c + 1) * CHUNK).min(n);
                let mut s = Summary::new();
                let mut health = WeightHealth::default();
                let mut z = vec![0.0f64; d];
                let mut state = init();
                for _ in lo..hi {
                    let mut dot = 0.0;
                    for (zi, &mi) in z.iter_mut().zip(&self.shift) {
                        let g: f64 = StandardNormal.sample(&mut rng);
                        *zi = g + mi;
                        dot += mi * *zi;
                    }
                    let w = if event(&mut state, &z) {
                        let w = (-dot + 0.5 * self.shift_norm2).exp();
                        // Weight spread is the health metric of a shifted
                        // estimator: a long right tail means the shift
                        // overshot and single samples dominate.
                        pvtm_telemetry::hist_record("mc.is_weight", w);
                        health.observe(w);
                        w
                    } else {
                        0.0
                    };
                    s.add(w);
                }
                // One write scope: a live scrape sees this chunk's moments
                // and health together or not at all (ESS stays recomputable
                // from any snapshot).
                pvtm_telemetry::update_scope(|| {
                    record_trace_chunk(&trace, c, &s);
                    health.record(&trace, c);
                });
                s
            })
            .reduce(Summary::new, |mut a, b| {
                a.merge(&b);
                a
            });
        McEstimate {
            value: summary.mean(),
            std_err: summary.std_err(),
            samples: summary.count(),
        }
    }

    /// [`Self::probability_init`] with per-sample quarantine instead of
    /// fail-stop.
    ///
    /// The event closure receives the worker state, the sampled vector, and
    /// the sample's global index, and returns a three-way
    /// [`SampleOutcome`]. Unresolved samples do not abort the estimation;
    /// they are counted and bracketed by both-sided bias bounds (see
    /// [`QuarantinedEstimate`]).
    ///
    /// Each event evaluation runs inside a deterministic fault-injection
    /// stream keyed by the sample's global index
    /// ([`pvtm_telemetry::fault::begin_stream`]), so injected solver
    /// failures land on the same samples regardless of how chunks are
    /// scheduled across threads. The random stream is identical to
    /// [`Self::probability_init`] for the same seed: with no unresolved
    /// samples, `fail_bound` equals its estimate bit-for-bit.
    pub fn probability_init_quarantined<S>(
        &self,
        n: u64,
        seed: u64,
        init: impl Fn() -> S + Sync,
        event: impl Fn(&mut S, &[f64], u64) -> SampleOutcome + Sync,
    ) -> QuarantinedEstimate {
        assert!(n > 0, "importance sampling needs at least one sample");
        let d = self.shift.len();
        let chunks = n.div_ceil(CHUNK);
        let trace = trace_for_chunks();
        record_start(&trace, n, chunks);
        let ctx = pvtm_telemetry::parallel_context();
        let (s_hi, s_lo, quarantined) = (0..chunks)
            .into_par_iter()
            .map(|c| {
                let _adopt = pvtm_telemetry::adopt(&ctx);
                let _span = pvtm_telemetry::span("mc.chunk");
                let mut rng = crate::rng::substream(seed, c);
                let lo = c * CHUNK;
                let hi = ((c + 1) * CHUNK).min(n);
                let mut s_hi = Summary::new();
                let mut s_lo = Summary::new();
                let mut health = WeightHealth::default();
                let mut quarantined = 0u64;
                let mut z = vec![0.0f64; d];
                let mut state = init();
                for i in lo..hi {
                    let mut dot = 0.0;
                    for (zi, &mi) in z.iter_mut().zip(&self.shift) {
                        let g: f64 = StandardNormal.sample(&mut rng);
                        *zi = g + mi;
                        dot += mi * *zi;
                    }
                    let outcome = {
                        let _stream = pvtm_telemetry::fault::begin_stream(i);
                        event(&mut state, &z, i)
                    };
                    let (w_hi, w_lo) = match outcome {
                        SampleOutcome::Pass => (0.0, 0.0),
                        SampleOutcome::Fail => {
                            let w = (-dot + 0.5 * self.shift_norm2).exp();
                            // Weight spread is the health metric of a
                            // shifted estimator; quarantined samples are
                            // excluded — their weight is a bound, not an
                            // observation.
                            pvtm_telemetry::hist_record("mc.is_weight", w);
                            health.observe(w);
                            (w, w)
                        }
                        SampleOutcome::Unresolved => {
                            quarantined += 1;
                            ((-dot + 0.5 * self.shift_norm2).exp(), 0.0)
                        }
                    };
                    s_hi.add(w_hi);
                    s_lo.add(w_lo);
                }
                // Paired under one write scope, as in `probability_init`.
                pvtm_telemetry::update_scope(|| {
                    record_trace_chunk(&trace, c, &s_hi);
                    health.record(&trace, c);
                });
                (s_hi, s_lo, quarantined)
            })
            .reduce(
                || (Summary::new(), Summary::new(), 0u64),
                |mut a, b| {
                    a.0.merge(&b.0);
                    a.1.merge(&b.1);
                    a.2 += b.2;
                    a
                },
            );
        QuarantinedEstimate {
            fail_bound: McEstimate {
                value: s_hi.mean(),
                std_err: s_hi.std_err(),
                samples: s_hi.count(),
            },
            pass_bound: McEstimate {
                value: s_lo.mean(),
                std_err: s_lo.std_err(),
                samples: s_lo.count(),
            },
            quarantined,
        }
    }
}

/// Draws `d` iid standard normal variates into a freshly allocated vector.
pub fn standard_normal_vec(rng: &mut impl Rng, d: usize) -> Vec<f64> {
    (0..d).map(|_| StandardNormal.sample(rng)).collect()
}

/// Convenience: a seeded [`StdRng`].
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::norm_cdf;

    #[test]
    fn mc_mean_of_constant() {
        let est = mc_mean(10_000, 1, |_| 3.25);
        assert_eq!(est.value, 3.25);
        assert_eq!(est.std_err, 0.0);
        assert_eq!(est.samples, 10_000);
    }

    #[test]
    fn mc_mean_is_deterministic_for_fixed_seed() {
        let a = mc_mean(50_000, 42, |rng| rng.gen::<f64>());
        let b = mc_mean(50_000, 42, |rng| rng.gen::<f64>());
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn mc_probability_coin_flip() {
        let est = mc_probability(200_000, 3, |rng| rng.gen::<f64>() < 0.25);
        assert!((est.value - 0.25).abs() < 5.0 * est.std_err);
    }

    #[test]
    fn importance_sampling_matches_analytic_tail() {
        // P[z > 3.5] in 1D.
        let exact = 1.0 - norm_cdf(3.5);
        let is = ImportanceSampler::new(vec![3.5]);
        let est = is.probability(300_000, 9, |z| z[0] > 3.5);
        assert!(
            (est.value - exact).abs() < 6.0 * est.std_err + 1e-9,
            "est={} exact={exact} se={}",
            est.value,
            est.std_err
        );
        // And it must beat plain MC's relative error at equal samples.
        assert!(est.rel_err() < 0.05);
    }

    #[test]
    fn importance_sampling_multidimensional() {
        // P[(z0+z1)/√2 > 3] = 1 - Φ(3).
        let exact = 1.0 - norm_cdf(3.0);
        let s = 3.0 / std::f64::consts::SQRT_2;
        let is = ImportanceSampler::new(vec![s, s]);
        let est = is.probability(300_000, 17, |z| {
            (z[0] + z[1]) / std::f64::consts::SQRT_2 > 3.0
        });
        assert!((est.value - exact).abs() < 6.0 * est.std_err + 1e-9);
    }

    #[test]
    fn importance_sampler_with_zero_shift_is_plain_mc() {
        let is = ImportanceSampler::new(vec![0.0]);
        let est = is.probability(100_000, 5, |z| z[0] > 1.0);
        let exact = 1.0 - norm_cdf(1.0);
        assert!((est.value - exact).abs() < 6.0 * est.std_err);
    }

    #[test]
    fn ci95_scales_with_std_err() {
        let e = McEstimate {
            value: 1.0,
            std_err: 0.1,
            samples: 100,
        };
        assert!((e.ci95() - 0.196).abs() < 1e-12);
        assert!((e.rel_err() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn importance_sampler_rejects_empty_shift() {
        let _ = ImportanceSampler::new(vec![]);
    }

    #[test]
    fn trace_scope_records_convergence_without_changing_estimate() {
        // Telemetry state is process-global; this is the only test in this
        // binary that enables it.
        pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Summary);
        pvtm_telemetry::reset();
        let is = ImportanceSampler::new(vec![3.0]);
        let plain = is.probability(20_000, 9, |z| z[0] > 3.0);
        pvtm_telemetry::reset();
        let traced = {
            let _t = pvtm_telemetry::trace_scope("test.mc");
            is.probability(20_000, 9, |z| z[0] > 3.0)
        };
        // Recording must not perturb the estimate.
        assert_eq!(plain.value, traced.value);
        assert_eq!(plain.std_err, traced.std_err);

        let r = pvtm_telemetry::snapshot();
        let t = r.trace("test.mc").expect("trace missing");
        assert_eq!(t.points.len(), 20_000usize.div_ceil(4096));
        for w in t.points.windows(2) {
            assert!(w[1].samples > w[0].samples, "samples must accumulate");
        }
        let last = t.points.last().unwrap();
        assert_eq!(last.samples, traced.samples);
        // The running merge replays the same Chan updates the estimator
        // itself performs, so the final trace point *is* the estimate.
        assert_eq!(last.value, traced.value);
        assert!((last.std_err - traced.std_err).abs() <= 1e-9 * traced.std_err);
        assert!((last.rel_err - traced.rel_err()).abs() <= 1e-9 * traced.rel_err());

        // Importance-sampling weights feed the health histogram.
        let h = r
            .histograms
            .iter()
            .find(|h| h.name == "mc.is_weight")
            .expect("weight histogram missing");
        assert!(h.count > 0);

        // And the per-chunk weight moments feed the estimator-health
        // diagnostics: ESS over contributing weights, bounded fractions.
        let health = t.health.expect("trace health missing");
        assert!(health.has_weights);
        assert_eq!(health.contributing, h.count);
        assert!(health.ess > 0.0 && health.ess <= health.contributing as f64);
        assert!(health.ess_fraction > 0.0 && health.ess_fraction <= 1.0);
        assert!(health.max_weight_fraction > 0.0 && health.max_weight_fraction <= 1.0);
        assert_eq!(health.steps, t.points.len() as u64 - 1);
        // The derived run-level gauges mirror the single trace.
        let gauge = |name: &str| {
            r.gauges
                .iter()
                .find(|(k, _)| k == name)
                .map(|&(_, v)| v)
                .expect(name)
        };
        assert_eq!(gauge("mc.ess"), health.ess);
        assert_eq!(gauge("mc.ess_fraction"), health.ess_fraction);
        assert_eq!(gauge("mc.max_weight_fraction"), health.max_weight_fraction);
        assert_eq!(gauge("mc.stall_ratio"), health.stall_ratio);

        pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Off);
        pvtm_telemetry::reset();
    }

    #[test]
    fn mc_mean_and_probability_record_traces() {
        pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Summary);
        pvtm_telemetry::reset();
        {
            let _t = pvtm_telemetry::trace_scope("test.mean");
            let est = mc_mean(10_000, 3, |rng| rng.gen::<f64>());
            let r = pvtm_telemetry::snapshot();
            let last = *r.trace("test.mean").unwrap().points.last().unwrap();
            assert_eq!(last.samples, 10_000);
            assert_eq!(last.value, est.value);
        }
        pvtm_telemetry::reset();
        {
            let _t = pvtm_telemetry::trace_scope("test.prob");
            let est = mc_probability(10_000, 3, |rng| rng.gen::<f64>() < 0.25);
            let r = pvtm_telemetry::snapshot();
            let last = *r.trace("test.prob").unwrap().points.last().unwrap();
            assert_eq!(last.samples, 10_000);
            assert_eq!(last.value, est.value);
            // Welford-based running std_err vs the binomial formula: close
            // but not identical by construction.
            assert!((last.std_err - est.std_err).abs() < 0.1 * est.std_err);
        }
        pvtm_telemetry::set_mode(pvtm_telemetry::Mode::Off);
        pvtm_telemetry::reset();
    }

    #[test]
    fn quarantined_estimator_without_unresolved_matches_probability_init() {
        // The random stream is shared with `probability_init`, so a fully
        // resolved run must reproduce its estimate bit-for-bit.
        let is = ImportanceSampler::new(vec![3.0, 0.5]);
        let plain = is.probability_init(50_000, 23, || (), |(), z| z[0] + 0.1 * z[1] > 3.0);
        let q = is.probability_init_quarantined(
            50_000,
            23,
            || (),
            |(), z, _i| {
                if z[0] + 0.1 * z[1] > 3.0 {
                    SampleOutcome::Fail
                } else {
                    SampleOutcome::Pass
                }
            },
        );
        assert_eq!(q.quarantined, 0);
        assert_eq!(q.fail_bound, plain);
        assert_eq!(q.pass_bound, plain);
    }

    #[test]
    fn quarantined_samples_widen_the_bias_bounds() {
        let is = ImportanceSampler::new(vec![3.0]);
        let n = 50_000u64;
        let q = is.probability_init_quarantined(
            n,
            31,
            || (),
            |(), z, i| {
                if i % 1000 == 0 {
                    SampleOutcome::Unresolved
                } else if z[0] > 3.0 {
                    SampleOutcome::Fail
                } else {
                    SampleOutcome::Pass
                }
            },
        );
        assert_eq!(q.quarantined, n.div_ceil(1000));
        assert!((q.quarantine_rate() - 0.001).abs() < 1e-4);
        // Every quarantined sample contributes its weight to the fail
        // bound and zero to the pass bound, so the bounds must bracket.
        assert!(q.fail_bound.value > q.pass_bound.value);
        assert_eq!(q.fail_bound.samples, n);
        assert_eq!(q.pass_bound.samples, n);
        // And the true (fully resolved) estimate lies between them.
        let clean = is.probability(n, 31, |z| z[0] > 3.0);
        assert!(q.pass_bound.value <= clean.value + 1e-12);
        assert!(q.fail_bound.value >= clean.value - 1e-12);
    }

    #[test]
    fn quarantined_estimator_is_deterministic() {
        let is = ImportanceSampler::new(vec![2.5]);
        let run = || {
            is.probability_init_quarantined(
                30_000,
                7,
                || (),
                |(), z, i| {
                    if i % 777 == 3 {
                        SampleOutcome::Unresolved
                    } else if z[0] > 2.5 {
                        SampleOutcome::Fail
                    } else {
                        SampleOutcome::Pass
                    }
                },
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
    }

    #[test]
    fn probability_init_matches_stateless_probability() {
        // A per-chunk scratch buffer must not change the estimate: the
        // random stream and weighting are identical to `probability`.
        let is = ImportanceSampler::new(vec![3.0, 0.5]);
        let plain = is.probability(100_000, 23, |z| z[0] + 0.1 * z[1] > 3.0);
        let stateful = is.probability_init(
            100_000,
            23,
            || vec![0.0f64; 2],
            |buf, z| {
                buf.copy_from_slice(z);
                buf[0] + 0.1 * buf[1] > 3.0
            },
        );
        assert_eq!(plain.value, stateful.value);
        assert_eq!(plain.std_err, stateful.std_err);
        assert_eq!(plain.samples, stateful.samples);
    }
}
