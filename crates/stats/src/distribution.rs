//! Thin Normal / LogNormal distribution types.
//!
//! The paper models the per-cell leakage as lognormal (its §III.F) and the
//! array leakage as normal via the central limit theorem (Eq. (2)). These
//! types collect cdf / quantile / moment / sampling functionality in one
//! place so those derivations read like the paper.

use rand::Rng;
use rand_distr::Distribution as _;
use serde::{Deserialize, Serialize};

use crate::special::{norm_cdf, norm_ppf};

/// Normal distribution `N(mean, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or either parameter is non-finite.
    pub fn new(mean: f64, sigma: f64) -> Self {
        assert!(
            mean.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid normal parameters: mean={mean}, sigma={sigma}"
        );
        Self { mean, sigma }
    }

    /// Mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        // pvtm-lint: allow(no-float-eq) degenerate (sigma = 0) distribution is a point mass
        if self.sigma == 0.0 {
            return if x >= self.mean { 1.0 } else { 0.0 };
        }
        norm_cdf((x - self.mean) / self.sigma)
    }

    /// Quantile function.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1)`.
    pub fn ppf(&self, p: f64) -> f64 {
        // pvtm-lint: allow(no-float-eq) degenerate (sigma = 0) distribution is a point mass
        if self.sigma == 0.0 {
            assert!(p > 0.0 && p < 1.0, "ppf requires p in (0,1)");
            return self.mean;
        }
        self.mean + self.sigma * norm_ppf(p)
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let g: f64 = rand_distr::StandardNormal.sample(rng);
        self.mean + self.sigma * g
    }
}

/// Lognormal distribution: `ln X ~ N(mu, sigma²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal from the parameters of the underlying normal.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid lognormal parameters: mu={mu}, sigma={sigma}"
        );
        Self { mu, sigma }
    }

    /// Creates a lognormal with the given *linear-domain* mean and standard
    /// deviation — the natural parametrization when matching measured
    /// leakage moments.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `std_dev < 0`.
    pub fn from_moments(mean: f64, std_dev: f64) -> Self {
        assert!(mean > 0.0, "lognormal mean must be positive, got {mean}");
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        let cv2 = (std_dev / mean).powi(2);
        let sigma2 = (1.0 + cv2).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        Self::new(mu, sigma2.sqrt())
    }

    /// Parameter `mu` of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Parameter `sigma` of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Linear-domain mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    /// Linear-domain variance.
    pub fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    /// Linear-domain standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        // pvtm-lint: allow(no-float-eq) degenerate (sigma = 0) distribution is a point mass
        if self.sigma == 0.0 {
            return if x.ln() >= self.mu { 1.0 } else { 0.0 };
        }
        norm_cdf((x.ln() - self.mu) / self.sigma)
    }

    /// Quantile function.
    pub fn ppf(&self, p: f64) -> f64 {
        // pvtm-lint: allow(no-float-eq) degenerate (sigma = 0) distribution is a point mass
        if self.sigma == 0.0 {
            assert!(p > 0.0 && p < 1.0, "ppf requires p in (0,1)");
            return self.mu.exp();
        }
        (self.mu + self.sigma * norm_ppf(p)).exp()
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let g: f64 = rand_distr::StandardNormal.sample(rng);
        (self.mu + self.sigma * g).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;

    #[test]
    fn normal_cdf_ppf_roundtrip() {
        let n = Normal::new(1.2, 0.3);
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
            let x = n.ppf(p);
            assert!((n.cdf(x) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_normal_is_a_point_mass() {
        let n = Normal::new(2.0, 0.0);
        assert_eq!(n.cdf(1.999), 0.0);
        assert_eq!(n.cdf(2.0), 1.0);
        assert_eq!(n.ppf(0.3), 2.0);
    }

    #[test]
    fn normal_sampling_moments() {
        let n = Normal::new(-0.5, 2.0);
        let mut rng = crate::rng::substream(4, 0);
        let s: Summary = (0..60_000).map(|_| n.sample(&mut rng)).collect();
        assert!((s.mean() + 0.5).abs() < 0.05);
        assert!((s.std_dev() - 2.0).abs() < 0.05);
    }

    #[test]
    fn lognormal_moment_matching_roundtrip() {
        let ln = LogNormal::from_moments(10.0, 4.0);
        assert!((ln.mean() - 10.0).abs() < 1e-10);
        assert!((ln.std_dev() - 4.0).abs() < 1e-10);
    }

    #[test]
    fn lognormal_cdf_against_normal() {
        let ln = LogNormal::new(0.0, 1.0);
        // Median of LogNormal(0,1) is e^0 = 1.
        assert!((ln.cdf(1.0) - 0.5).abs() < 1e-12);
        assert_eq!(ln.cdf(0.0), 0.0);
        assert_eq!(ln.cdf(-5.0), 0.0);
    }

    #[test]
    fn lognormal_sampling_moments() {
        let ln = LogNormal::from_moments(5.0, 1.5);
        let mut rng = crate::rng::substream(8, 0);
        let s: Summary = (0..80_000).map(|_| ln.sample(&mut rng)).collect();
        assert!((s.mean() - 5.0).abs() < 0.05, "mean={}", s.mean());
        assert!((s.std_dev() - 1.5).abs() < 0.08, "sd={}", s.std_dev());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn lognormal_rejects_nonpositive_mean() {
        let _ = LogNormal::from_moments(0.0, 1.0);
    }
}
