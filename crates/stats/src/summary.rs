//! Numerically stable streaming summary statistics.

use serde::{Deserialize, Serialize};

/// Streaming mean / variance / extrema accumulator (Welford's algorithm),
/// mergeable so it can be used as the reduction state of a parallel
/// Monte-Carlo loop.
///
/// # Example
///
/// ```
/// use pvtm_stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.add(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.add(x);
        }
        s
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Welford's `M2` — the sum of squared deviations from the mean. This
    /// plus [`Self::count`] and [`Self::mean`] is the full merge state,
    /// which is what telemetry convergence traces record per chunk.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Unbiased sample variance; 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.add(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0 + 1.0).collect();
        let whole = Summary::from_slice(&xs);
        let mut a = Summary::from_slice(&xs[..37]);
        let b = Summary::from_slice(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn stable_under_large_offset() {
        // Classic catastrophic-cancellation check.
        let offset = 1e9;
        let s: Summary = [1.0, 2.0, 3.0].iter().map(|x| x + offset).collect();
        assert!((s.variance() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: Summary = (0..10).map(|i| i as f64).collect();
        s.extend((10..20).map(|i| i as f64));
        assert_eq!(s.count(), 20);
        assert!((s.mean() - 9.5).abs() < 1e-12);
    }
}
