//! One-sample Kolmogorov–Smirnov goodness-of-fit test.
//!
//! Used by the test-suite (and available to library users) to check that
//! sampled leakage / variation populations match their claimed analytic
//! distributions — e.g. that array leakage really is Gaussian by the central
//! limit theorem (paper Eq. (2)).

/// Result of a one-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsResult {
    /// The KS statistic `D = sup |F_n(x) - F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value (Kolmogorov distribution).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

impl KsResult {
    /// True when the fit is *not* rejected at the given significance level.
    pub fn accepts(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

/// Kolmogorov survival function `Q(λ) = 2 Σ (-1)^{k-1} e^{-2k²λ²}`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda < 0.1 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = sign * (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += term;
        if term.abs() < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample KS test of `xs` against the continuous CDF `cdf`.
///
/// # Panics
///
/// Panics if `xs` is empty or contains NaN.
///
/// # Example
///
/// ```
/// use pvtm_stats::ks::ks_test;
/// use pvtm_stats::special::norm_cdf;
/// use rand::Rng;
///
/// let mut rng = pvtm_stats::rng::substream(5, 0);
/// let xs: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>()).collect();
/// // U(0,1) against its own CDF: fit accepted.
/// let r = ks_test(&xs, |x| x.clamp(0.0, 1.0));
/// assert!(r.accepts(0.001));
/// // U(0,1) against a normal CDF: fit rejected.
/// let bad = ks_test(&xs, norm_cdf);
/// assert!(!bad.accepts(0.001));
/// ```
pub fn ks_test(xs: &[f64], cdf: impl Fn(f64) -> f64) -> KsResult {
    assert!(!xs.is_empty(), "KS test needs samples");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in KS input"));
    let n = sorted.len();
    let nf = n as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let d_plus = (i as f64 + 1.0) / nf - f;
        let d_minus = f - i as f64 / nf;
        d = d.max(d_plus).max(d_minus);
    }
    let sqrt_n = nf.sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    KsResult {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::norm_cdf;
    use rand_distr::Distribution;

    #[test]
    fn normal_samples_accepted_against_normal_cdf() {
        let mut rng = crate::rng::substream(21, 0);
        let xs: Vec<f64> = (0..5000)
            .map(|_| rand_distr::StandardNormal.sample(&mut rng))
            .collect();
        let r = ks_test(&xs, norm_cdf);
        assert!(r.accepts(0.001), "D={} p={}", r.statistic, r.p_value);
    }

    #[test]
    fn shifted_samples_rejected() {
        let mut rng = crate::rng::substream(22, 0);
        let xs: Vec<f64> = (0..5000)
            .map(|_| {
                let g: f64 = rand_distr::StandardNormal.sample(&mut rng);
                g + 0.3
            })
            .collect();
        let r = ks_test(&xs, norm_cdf);
        assert!(!r.accepts(0.001), "should reject a 0.3-sigma shift");
    }

    #[test]
    fn statistic_is_in_unit_interval() {
        let xs = [0.2, 0.4, 0.9];
        let r = ks_test(&xs, |x| x.clamp(0.0, 1.0));
        assert!(r.statistic >= 0.0 && r.statistic <= 1.0);
        assert!(r.p_value >= 0.0 && r.p_value <= 1.0);
    }

    #[test]
    fn kolmogorov_sf_monotone() {
        let mut prev = 1.0;
        for i in 1..40 {
            let v = kolmogorov_sf(i as f64 * 0.1);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }
}
