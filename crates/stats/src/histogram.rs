//! Fixed-range histograms and exact sample quantiles.
//!
//! Used to regenerate the distribution figures of the paper (cell and array
//! leakage histograms of Fig. 3, source-bias and standby-power distributions
//! of Fig. 9).

use serde::{Deserialize, Serialize};

/// A histogram with uniformly sized bins over a closed range.
///
/// Observations outside the range are counted in underflow/overflow buckets
/// rather than silently dropped, so totals always reconcile.
///
/// # Example
///
/// ```
/// use pvtm_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10);
/// for x in [0.5, 1.5, 1.7, 9.9, -3.0] {
///     h.add(x);
/// }
/// assert_eq!(h.count(1), 2);     // the two values in [1, 2)
/// assert_eq!(h.underflow(), 1);  // -3.0
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `nbins` equal bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`, if either bound is non-finite, or `nbins == 0`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi})"
        );
        assert!(nbins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Builds a histogram spanning exactly the sample range of `xs` (padded
    /// by half a bin so the maximum lands inside).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains non-finite values.
    pub fn from_samples(xs: &[f64], nbins: usize) -> Self {
        assert!(!xs.is_empty(), "cannot infer a range from no samples");
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in xs {
            assert!(x.is_finite(), "non-finite sample {x}");
            lo = lo.min(x);
            hi = hi.max(x);
        }
        if lo == hi {
            // Degenerate sample: widen to a unit-ish window around it.
            let pad = lo.abs().max(1.0) * 1e-6;
            lo -= pad;
            hi += pad;
        }
        let pad = (hi - lo) / (2.0 * nbins as f64);
        let mut h = Self::new(lo, hi + pad, nbins);
        for &x in xs {
            h.add(x);
        }
        h
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nbins()`.
    pub fn count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// All bin counts, in order.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.bins.iter().sum::<u64>()
    }

    /// Normalized density value of bin `i` (integrates to the in-range
    /// fraction of the data).
    pub fn density(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.bins[i] as f64 / (total as f64 * self.bin_width())
    }

    /// Empirical CDF evaluated at the upper edge of bin `i`.
    pub fn cdf_at_bin(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let below: u64 = self.underflow + self.bins[..=i].iter().sum::<u64>();
        below as f64 / total as f64
    }

    /// Fraction of in-range mass that overlaps another histogram with the
    /// same binning. Used by tests/figures to quantify how separable two
    /// leakage distributions are (paper Fig. 3).
    ///
    /// # Panics
    ///
    /// Panics if the histograms have different ranges or bin counts.
    pub fn overlap(&self, other: &Histogram) -> f64 {
        assert_eq!(self.lo, other.lo, "histogram ranges differ");
        assert_eq!(self.hi, other.hi, "histogram ranges differ");
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts differ");
        let ta = self.total().max(1) as f64;
        let tb = other.total().max(1) as f64;
        self.bins
            .iter()
            .zip(&other.bins)
            .map(|(&a, &b)| (a as f64 / ta).min(b as f64 / tb))
            .sum()
    }
}

/// Exact sample quantile using linear interpolation (type-7, the numpy
/// default), computed on a scratch copy of the data.
///
/// # Panics
///
/// Panics if `xs` is empty, contains NaN, or `q` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use pvtm_stats::histogram::quantile;
/// let xs = [3.0, 1.0, 2.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5), 2.5);
/// assert_eq!(quantile(&xs, 0.0), 1.0);
/// assert_eq!(quantile(&xs, 1.0), 4.0);
/// ```
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range: {q}");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (v.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < v.len() {
        v[i] * (1.0 - frac) + v[i + 1] * frac
    } else {
        v[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(0.0); // first bin
        h.add(0.999); // last bin
        h.add(1.0); // overflow (range is half-open)
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn density_integrates_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 10.0, 20);
        for i in 0..1000 {
            h.add(i as f64 * 0.01); // all in [0, 10)
        }
        let integral: f64 = (0..h.nbins()).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_samples_covers_extrema() {
        let xs = [-2.0, 5.0, 11.0, 3.0];
        let h = Histogram::from_samples(&xs, 8);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn from_samples_degenerate_constant() {
        let xs = [7.0; 10];
        let h = Histogram::from_samples(&xs, 5);
        assert_eq!(h.total(), 10);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin()).collect();
        let h = Histogram::from_samples(&xs, 32);
        let mut prev = 0.0;
        for i in 0..h.nbins() {
            let c = h.cdf_at_bin(i);
            assert!(c >= prev);
            prev = c;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_of_identical_histograms_is_one() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64 * 0.05).collect();
        let mut a = Histogram::new(0.0, 10.0, 16);
        let mut b = Histogram::new(0.0, 10.0, 16);
        for &x in &xs {
            a.add(x);
            b.add(x);
        }
        assert!((a.overlap(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_of_disjoint_histograms_is_zero() {
        let mut a = Histogram::new(0.0, 10.0, 10);
        let mut b = Histogram::new(0.0, 10.0, 10);
        a.add(1.0);
        b.add(9.0);
        assert_eq!(a.overlap(&b), 0.0);
    }

    #[test]
    fn quantile_median_of_odd_sample() {
        assert_eq!(quantile(&[5.0, 1.0, 3.0], 0.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        let _ = quantile(&[], 0.5);
    }
}
