//! Quickstart: a tour of the stack in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pvtm_device::{Bias, Mosfet, Technology};
use pvtm_sram::{AnalysisConfig, CellAnalysis, CellSizing, Conditions, FailureAnalyzer, SramCell};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A predictive 70 nm technology card and a device.
    let tech = Technology::predictive_70nm();
    let nmos = Mosfet::nmos(&tech, 200e-9, tech.lmin());
    let on = nmos.ids(Bias::new(tech.vdd(), tech.vdd(), 0.0, 0.0), tech.temp_k());
    let off = nmos.ids(Bias::new(0.0, tech.vdd(), 0.0, 0.0), tech.temp_k());
    println!(
        "NMOS 200n/70n: Ion = {:.1} uA, Ioff = {:.2} nA, Ion/Ioff = {:.0}",
        on * 1e6,
        off * 1e9,
        on / off
    );

    // 2. A 6T cell and its four failure-metric margins.
    let cell = SramCell::nominal(&tech);
    let analysis = CellAnalysis::new(&tech, AnalysisConfig::default());
    let margins = analysis.margins(&cell, &Conditions::standby(&tech, 0.5))?;
    println!("\nnominal cell margins (hold at VSB = 0.5 V):");
    println!("  read   {:+.3} V", margins.read);
    println!("  write  {:+.3} (ln T_WL/t_wr)", margins.write);
    println!("  access {:+.3} (ln T_MAX/t_acc)", margins.access);
    println!("  hold   {:+.3} (ln allowed/actual droop)", margins.hold);

    // 3. Failure probabilities at three inter-die corners.
    let fa = FailureAnalyzer::new(
        &tech,
        CellSizing::default_for(&tech),
        AnalysisConfig::default(),
    );
    println!("\ncell failure probabilities across corners:");
    for corner in [-0.1, 0.0, 0.1] {
        let p = fa.failure_probs(corner, &Conditions::standby(&tech, 0.5))?;
        println!(
            "  Vt_inter {corner:+.2} V: overall {:.2e} (dominant: {})",
            p.overall(),
            p.dominant()
        );
    }

    // 4. Body bias moves the balance — the knob the self-repairing
    //    memory turns.
    let rbb = fa.failure_probs(-0.1, &Conditions::standby(&tech, 0.5).with_body_bias(-0.45))?;
    let fbb = fa.failure_probs(0.1, &Conditions::standby(&tech, 0.5).with_body_bias(0.45))?;
    println!("\nafter adaptive body bias:");
    println!("  low-Vt die + RBB:  overall {:.2e}", rbb.overall());
    println!("  high-Vt die + FBB: overall {:.2e}", fbb.overall());
    Ok(())
}
