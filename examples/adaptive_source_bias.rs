//! The self-adaptive source-bias calibration of one die, step by step
//! (paper §IV, Fig. 7).
//!
//! ```sh
//! cargo run --release --example adaptive_source_bias
//! ```

use pvtm::adaptive::{AsbConfig, AsbEngine, StandbyLeakageGrid};
use pvtm::interp::linspace;
use pvtm::source_bias::{HoldModelGrid, SourceBiasAnalyzer};
use pvtm_bist::{Dac, MarchTest};
use pvtm_device::Technology;
use pvtm_sram::{AnalysisConfig, ArrayOrganization, CellSizing};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::predictive_70nm();
    let sizing = CellSizing::default_for(&tech);
    let analyzer = SourceBiasAnalyzer::new(&tech, sizing, AnalysisConfig::default());

    println!("building hold-model and leakage grids (a few seconds)...");
    let corners = linspace(-0.12, 0.12, 5);
    let vsbs = linspace(0.30, 0.74, 10);
    let hold = HoldModelGrid::build(&analyzer, corners.clone(), vsbs.clone())?;
    let leak = StandbyLeakageGrid::build(&tech, sizing, corners, vsbs, 200);
    let engine = AsbEngine::new(
        hold,
        leak,
        AsbConfig {
            org: ArrayOrganization::with_capacity_kib(2, 0.05),
            dac: Dac::new(5, 0.74),
            march: MarchTest::march_c_minus(),
            use_guard: 0.01,
            backoff_codes: 1,
        },
    );
    let spares = engine.config().org.redundant_cols;

    for corner in [-0.08, 0.0, 0.08] {
        let mut rng = pvtm_stats::rng::substream(2024, (corner * 1e3) as i64 as u64);
        let mut die = engine.build_die(corner, &mut rng);
        println!(
            "\n== die at Vt_inter {corner:+.2} V ({} retention-marginal cells) ==",
            die.fault_count()
        );
        let outcome = engine.calibrate(&mut die);
        println!("calibration trajectory (spare columns: {spares}):");
        for step in &outcome.steps {
            let verdict = if step.faulty_columns <= spares {
                "pass"
            } else {
                "STOP"
            };
            println!(
                "  code {:>2} -> VSB {:.3} V : {:>2} faulty columns [{verdict}]",
                step.code, step.vsb, step.faulty_columns
            );
        }
        println!(
            "VSB(adaptive) = {:.3} V (limit code {}, applied code {} after back-off)",
            outcome.vsb, outcome.limit_code, outcome.code
        );
        let cells = engine.config().org.cells();
        let p0 = engine.leakage_grid().standby_power(corner, 0.0, cells);
        let pa = engine
            .leakage_grid()
            .standby_power(corner, outcome.vsb, cells);
        println!(
            "standby power: {:.2} uW -> {:.2} uW ({:.1}x saving)",
            p0 * 1e6,
            pa * 1e6,
            p0 / pa
        );
    }
    Ok(())
}
