//! Why the monitor senses the whole array: per-cell leakage distributions
//! overlap across inter-die corners, array-level distributions separate
//! (paper Fig. 3), and comparator offset causes mis-binning only near the
//! region boundaries.
//!
//! ```sh
//! cargo run --release --example leakage_binning
//! ```

use pvtm::monitor::VtRegion;
use pvtm::self_repair::{SelfRepairConfig, SelfRepairingMemory};
use pvtm_device::Technology;
use pvtm_sram::{CellLeakageModel, CellSizing, Conditions};
use pvtm_stats::Summary;

fn main() {
    let tech = Technology::predictive_70nm();
    let model = CellLeakageModel::new(&tech, CellSizing::default_for(&tech));
    let cond = Conditions::active(&tech);

    println!("== per-cell vs per-array leakage separation ==");
    println!(
        "{:>10} {:>22} {:>26}",
        "corner", "cell mean±sd [nA]", "1KB-array mean±sd [uA]"
    );
    for corner in [-0.10, 0.0, 0.10] {
        let mut rng = pvtm_stats::rng::substream(11, (corner * 1e3) as i64 as u64);
        let stats = model.population_stats(corner, &cond, 4000, &mut rng);
        let cells = 8192.0;
        // Eq. (2): mean scales with N, sigma with sqrt(N).
        println!(
            "{:>9.0}m {:>12.1} ± {:>6.1} {:>16.1} ± {:>6.2}",
            corner * 1e3,
            stats.mean * 1e9,
            stats.std_dev * 1e9,
            stats.mean * cells * 1e6,
            stats.std_dev * cells.sqrt() * 1e6
        );
    }
    println!("(cell sigma ~ mean: corners are indistinguishable per cell;");
    println!(" array sigma is ~100x smaller than the corner-to-corner spacing)");

    println!("\n== binning with an ideal and a noisy monitor ==");
    let mut cfg = SelfRepairConfig::default_70nm(64, 102);
    cfg.monitor_offset_sigma = 0.03;
    let memory = SelfRepairingMemory::new(cfg);
    let mut rng = pvtm_stats::rng::substream(13, 0);
    for corner in [-0.10, -0.055, -0.05, 0.0, 0.05, 0.055, 0.10] {
        let leak = memory.die_leakage(corner, 0.0);
        let ideal = memory.binner().classify_ideal(leak);
        // Repeat the noisy decision to expose boundary ambiguity.
        let mut counts = [0usize; 3];
        for _ in 0..200 {
            match memory.binner().classify(leak, &mut rng) {
                VtRegion::LowVt => counts[0] += 1,
                VtRegion::Nominal => counts[1] += 1,
                VtRegion::HighVt => counts[2] += 1,
            }
        }
        println!(
            "corner {corner:+.3} V: ideal {ideal:<12} noisy A/B/C = {:>3}/{:>3}/{:>3}",
            counts[0], counts[1], counts[2]
        );
    }

    println!("\n== the CLT at work: array leakage is Gaussian ==");
    let mut rng = pvtm_stats::rng::substream(17, 0);
    let arrays: Vec<f64> = (0..300)
        .map(|_| {
            (0..2048)
                .map(|_| model.sample_cell(0.0, &cond, &mut rng))
                .sum::<f64>()
        })
        .collect();
    let s = Summary::from_slice(&arrays);
    let ks = pvtm_stats::ks::ks_test(&arrays, |x| {
        pvtm_stats::special::norm_cdf((x - s.mean()) / s.std_dev())
    });
    println!(
        "2048-cell array sums: KS statistic {:.3}, p = {:.3} (Gaussian {})",
        ks.statistic,
        ks.p_value,
        if ks.accepts(0.01) {
            "accepted"
        } else {
            "rejected"
        }
    );
}
