//! Drive the circuit simulator from a SPICE-like text deck: DC operating
//! point with per-element currents, then a transient of the same cell
//! flipping during a write.
//!
//! ```sh
//! cargo run --release --example netlist_deck
//! ```

use pvtm_circuit::{dc, parse_netlist, TransientOptions};
use pvtm_device::Technology;

const CELL_DECK: &str = "\
* 6T SRAM cell biased for a write-0 through the left access transistor
.temp 300
V1  vdd 0 1.0
VWL wl  0 1.0
VBL bl  0 0.0
VBR br  0 1.0
MPL vl vr vdd vdd pmos w=100n l=70n
MNL vl vr 0   0   nmos w=200n l=70n
MPR vr vl vdd vdd pmos w=100n l=70n
MNR vr vl 0   0   nmos w=200n l=70n
MAL vl wl bl  0   nmos w=140n l=70n
MAR vr wl br  0   nmos w=140n l=70n
CL  vl 0 2f
CR  vr 0 2f
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::predictive_70nm();
    let ckt = parse_netlist(CELL_DECK, &tech)?;

    println!("== DC operating point (write condition) ==");
    let sol = ckt.solve_dc()?;
    for node in ["vl", "vr"] {
        let id = ckt.find_node(node).expect("node exists");
        println!("  v({node}) = {:.4} V", sol.voltage(id));
    }
    println!("  per-element currents:");
    for (name, i) in dc::operating_point(&ckt, &sol) {
        if i.abs() > 1e-9 {
            println!("    {name:<4} {:>9.2} uA", i * 1e6);
        }
    }
    let vl = ckt.find_node("vl").expect("node exists");
    let vr = ckt.find_node("vr").expect("node exists");
    println!(
        "  -> the bit line won: VL = {:.3} V, VR = {:.3} V (cell flipped to 0/1)",
        sol.voltage(vl),
        sol.voltage(vr)
    );

    println!("\n== transient: the flip trajectory from the stored-1 state ==");
    // Start from the opposite (stored 1 at VL) state and watch the write
    // pull it over.
    let num_unknowns = ckt.num_nodes() - 1 + 4; // free nodes + 4 source branches
    let mut state = vec![0.0; num_unknowns];
    for (node, v) in [
        ("vdd", 1.0),
        ("wl", 1.0),
        ("bl", 0.0),
        ("br", 1.0),
        ("vl", 1.0),
        ("vr", 0.0),
    ] {
        let id = ckt.find_node(node).expect("node exists");
        state[id.index() - 1] = v;
    }
    let res = pvtm_circuit::transient::solve(
        &ckt,
        &TransientOptions::new(1e-12, 200e-12).with_initial_state(state),
    )?;
    for &t in &[0.0, 20e-12, 50e-12, 100e-12, 200e-12] {
        let idx = (t / 1e-12) as usize;
        let idx = idx.min(res.times().len() - 1);
        println!(
            "  t = {:>5.0} ps: VL = {:.3} V, VR = {:.3} V",
            res.times()[idx] * 1e12,
            res.trace(vl)[idx],
            res.trace(vr)[idx]
        );
    }
    match res.crossing_time(vl, 0.5, true) {
        Some(t) => println!("  cell flip (VL below VDD/2) at t = {:.1} ps", t * 1e12),
        None => println!("  cell did not flip within the window"),
    }
    Ok(())
}
