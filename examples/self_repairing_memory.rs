//! The self-repairing SRAM end to end: monitor a die population, bin by
//! leakage, apply body bias, and compare yields (paper §III).
//!
//! ```sh
//! cargo run --release --example self_repairing_memory
//! ```

use pvtm::interp::linspace;
use pvtm::self_repair::{Policy, SelfRepairConfig, SelfRepairingMemory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let memory = SelfRepairingMemory::new(SelfRepairConfig::default_70nm(64, 102));

    println!("== leakage-monitor binning ==");
    for corner in [-0.15, -0.08, 0.0, 0.08, 0.15] {
        let leak = memory.die_leakage(corner, 0.0);
        let region = memory.classify(corner);
        let bias = memory.applied_bias(corner);
        println!(
            "die at Vt_inter {corner:+.2} V: array leakage {:>8.2} uA -> {region} -> Vbb {bias:+.2} V",
            leak * 1e6
        );
    }

    println!("\ncomputing the corner response (a few seconds)...");
    let response = memory.response(&linspace(-0.30, 0.30, 13))?;

    println!("\n== cell failure probability across corners ==");
    for &corner in &[-0.2, -0.1, 0.0, 0.1, 0.2] {
        println!(
            "  {corner:+.2} V: ZBB {:.2e}   self-repaired {:.2e}",
            response.p_cell(corner, Policy::Zbb),
            response.p_cell(corner, Policy::SelfRepair)
        );
    }

    println!("\n== parametric yield (Eq. 1) ==");
    for &sigma in &[0.05, 0.10, 0.15] {
        let zbb = response.parametric_yield(sigma, Policy::Zbb);
        let rep = response.parametric_yield(sigma, Policy::SelfRepair);
        println!(
            "  sigma {:.0} mV: ZBB {:.1}%  self-repairing {:.1}%  ({:+.1} pp)",
            sigma * 1e3,
            100.0 * zbb,
            100.0 * rep,
            100.0 * (rep - zbb)
        );
    }

    println!("\n== leakage yield (Eqs. 3-4) ==");
    let l_max = 2.5 * response.array_leak_mean(0.0, Policy::Zbb);
    for &sigma in &[0.05, 0.10, 0.15] {
        println!(
            "  sigma {:.0} mV: ZBB {:.1}%  self-repairing {:.1}%",
            sigma * 1e3,
            100.0 * response.leakage_yield(sigma, l_max, Policy::Zbb),
            100.0 * response.leakage_yield(sigma, l_max, Policy::SelfRepair)
        );
    }
    Ok(())
}
