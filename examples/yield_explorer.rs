//! Yield explorer: sweep capacity, redundancy and variation, and print the
//! yield surface for both body-bias policies.
//!
//! ```sh
//! cargo run --release --example yield_explorer [kib] [spares] [sigma_mv]
//! cargo run --release --example yield_explorer 128 16 120
//! ```

use pvtm::interp::linspace;
use pvtm::self_repair::{Policy, SelfRepairConfig, SelfRepairingMemory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let kib: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(64);
    let spares: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(32);
    let sigma_mv: f64 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(100.0);

    println!("memory: {kib} KiB, {spares} spare columns, sigma(Vt_inter) = {sigma_mv} mV");
    let memory = SelfRepairingMemory::new(SelfRepairConfig::default_70nm(kib, spares));
    let response = memory.response(&linspace(-0.30, 0.30, 13))?;
    let sigma = sigma_mv * 1e-3;

    println!("\ncorner response:");
    println!(
        "{:>9} {:>10} {:>8} {:>12} {:>12}",
        "corner", "region", "bias", "p_cell ZBB", "p_cell ABB"
    );
    for p in response.points() {
        println!(
            "{:>8.0}m {:>10} {:>7.2}V {:>12.2e} {:>12.2e}",
            p.corner * 1e3,
            p.region.to_string(),
            p.bias,
            p.probs_zbb.overall(),
            p.probs_abb.overall()
        );
    }

    let zbb = response.parametric_yield(sigma, Policy::Zbb);
    let rep = response.parametric_yield(sigma, Policy::SelfRepair);
    println!(
        "\nparametric yield: ZBB {:.2}%  self-repairing {:.2}%",
        100.0 * zbb,
        100.0 * rep
    );

    let l_max = 2.5 * response.array_leak_mean(0.0, Policy::Zbb);
    println!(
        "leakage yield (L_MAX = {:.1} mA): ZBB {:.2}%  self-repairing {:.2}%",
        l_max * 1e3,
        100.0 * response.leakage_yield(sigma, l_max, Policy::Zbb),
        100.0 * response.leakage_yield(sigma, l_max, Policy::SelfRepair)
    );
    Ok(())
}
