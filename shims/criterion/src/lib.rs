//! Offline shim of the `criterion` benchmarking API surface used by the
//! pvtm workspace: `Criterion`, `bench_function`, `benchmark_group`,
//! `Bencher::iter`/`iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: per bench, a short warm-up calibrates the iteration
//! count for a fixed time budget, then a handful of samples are timed and
//! min / median / mean ns-per-iteration are printed. Results also land in
//! a machine-readable line (`BENCH_JSON {...}`) so scripts can scrape them.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const WARMUP: Duration = Duration::from_millis(120);
const MEASURE: Duration = Duration::from_millis(360);
const SAMPLES: usize = 12;

/// Benchmark driver: filters from CLI args and runs benches.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the bench filter from CLI args, ignoring `--flags` (and their
    /// values for the common cargo-bench flags).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--bench" || a == "--test" {
                continue;
            }
            if a.starts_with("--") {
                // Flags with a value we must skip.
                if matches!(
                    a.as_str(),
                    "--sample-size" | "--measurement-time" | "--warm-up-time" | "--save-baseline"
                ) {
                    let _ = args.next();
                }
                continue;
            }
            self.filter = Some(a);
            break;
        }
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one benchmark if it matches the filter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(name) {
            let mut b = Bencher::new();
            f(&mut b);
            b.report(name);
        }
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group; `sample_size` is accepted for API compatibility.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim keeps its fixed sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark under `group/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup; the shim always rebuilds inputs
/// untimed per sample, so the variants are equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    /// ns-per-iteration samples gathered by `iter`/`iter_batched`.
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new() -> Self {
        Self {
            samples_ns: Vec::new(),
        }
    }

    /// Times `routine` with no per-iteration setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate the per-sample iteration count.
        let mut iters_per_sample = 1u64;
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        if warm_iters > 0 {
            let per_iter = WARMUP.as_secs_f64() / warm_iters as f64;
            let budget = MEASURE.as_secs_f64() / SAMPLES as f64;
            iters_per_sample = ((budget / per_iter) as u64).max(1);
        }
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples_ns.push(dt * 1e9 / iters_per_sample as f64);
        }
    }

    /// Times `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with setup excluded as well as possible.
        let mut iters_per_sample = 1u64;
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut timed = Duration::ZERO;
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            timed += t0.elapsed();
            warm_iters += 1;
        }
        if warm_iters > 0 && !timed.is_zero() {
            let per_iter = timed.as_secs_f64() / warm_iters as f64;
            let budget = MEASURE.as_secs_f64() / SAMPLES as f64;
            iters_per_sample = ((budget / per_iter) as u64).clamp(1, 1 << 20);
        }
        for _ in 0..SAMPLES {
            // Build the whole batch untimed, then time one tight loop.
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = t0.elapsed().as_secs_f64();
            self.samples_ns.push(dt * 1e9 / iters_per_sample as f64);
        }
    }

    fn report(mut self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        self.samples_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        let n = self.samples_ns.len();
        let min = self.samples_ns[0];
        let median = self.samples_ns[n / 2];
        let mean = self.samples_ns.iter().sum::<f64>() / n as f64;
        println!(
            "{name:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
        println!(
            "BENCH_JSON {{\"name\":\"{name}\",\"min_ns\":{min:.1},\"median_ns\":{median:.1},\"mean_ns\":{mean:.1}}}"
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new();
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert_eq!(b.samples_ns.len(), SAMPLES);
        assert!(b.samples_ns.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn group_and_filter() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
        };
        let mut ran = false;
        // Closure must not run: name does not contain the filter.
        c.bench_function("other", |_| ran = true);
        assert!(!ran);
        assert!(c.matches("group/match-me-please"));
    }
}
