//! Offline shim of `serde`: a single-format (JSON) serialization trait
//! pair that keeps `#[derive(Serialize, Deserialize)]` call sites
//! compiling and `serde_json::to_writer_pretty` working without crates.io
//! access.
//!
//! The workspace only ever *writes* JSON (experiment results); nothing
//! deserializes at runtime, so [`Deserialize`] is a marker trait.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can write itself as JSON.
pub trait Serialize {
    /// Appends this value's JSON representation to the writer.
    fn serialize_json(&self, w: &mut JsonWriter);
}

/// Marker for types the real serde could deserialize; unused at runtime in
/// this workspace.
pub trait Deserialize {}

/// Incremental JSON writer with optional pretty-printing (2-space indent,
/// matching `serde_json`'s pretty format closely enough for humans and
/// parsers alike).
#[derive(Debug)]
pub struct JsonWriter {
    buf: String,
    pretty: bool,
    /// One entry per open container: `true` = array, `false` = object; the
    /// count tracks elements written so far.
    stack: Vec<(bool, usize)>,
}

impl JsonWriter {
    /// Creates a writer; `pretty` enables indentation.
    pub fn new(pretty: bool) -> Self {
        Self {
            buf: String::new(),
            pretty,
            stack: Vec::new(),
        }
    }

    /// Consumes the writer, returning the JSON text.
    pub fn into_string(self) -> String {
        self.buf
    }

    fn newline_indent(&mut self) {
        if self.pretty {
            self.buf.push('\n');
            for _ in 0..self.stack.len() {
                self.buf.push_str("  ");
            }
        }
    }

    /// Comma/indent bookkeeping before a value in array (or top-level)
    /// position. Object values are prefixed by [`Self::key`] instead.
    fn value_prefix(&mut self) {
        if let Some(&mut (is_array, ref mut count)) = self.stack.last_mut() {
            if is_array {
                if *count > 0 {
                    self.buf.push(',');
                }
                *count += 1;
                self.newline_indent();
            }
        }
    }

    /// Starts an object (`{`).
    pub fn begin_object(&mut self) {
        self.value_prefix();
        self.buf.push('{');
        self.stack.push((false, 0));
    }

    /// Ends the current object (`}`).
    pub fn end_object(&mut self) {
        let (is_array, count) = self.stack.pop().expect("end_object without begin");
        assert!(!is_array, "end_object closing an array");
        if count > 0 {
            self.newline_indent();
        }
        self.buf.push('}');
    }

    /// Starts an array (`[`).
    pub fn begin_array(&mut self) {
        self.value_prefix();
        self.buf.push('[');
        self.stack.push((true, 0));
    }

    /// Ends the current array (`]`).
    pub fn end_array(&mut self) {
        let (is_array, count) = self.stack.pop().expect("end_array without begin");
        assert!(is_array, "end_array closing an object");
        if count > 0 {
            self.newline_indent();
        }
        self.buf.push(']');
    }

    /// Writes an object key; the next write is its value.
    pub fn key(&mut self, k: &str) {
        let &mut (is_array, ref mut count) = self.stack.last_mut().expect("key outside an object");
        assert!(!is_array, "key inside an array");
        if *count > 0 {
            self.buf.push(',');
        }
        *count += 1;
        self.newline_indent();
        self.write_escaped(k);
        self.buf.push(':');
        if self.pretty {
            self.buf.push(' ');
        }
    }

    /// Writes a string value.
    pub fn string(&mut self, s: &str) {
        self.value_prefix();
        self.write_escaped(s);
    }

    /// Writes a pre-formatted scalar (number, bool, null).
    pub fn raw(&mut self, s: &str) {
        self.value_prefix();
        self.buf.push_str(s);
    }

    fn write_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, w: &mut JsonWriter) {
        if self.is_finite() {
            // `{:?}` is the shortest round-trip form and always keeps a
            // decimal point or exponent (`2.0`, not `2`).
            w.raw(&format!("{self:?}"));
        } else {
            // serde_json maps non-finite floats to null.
            w.raw("null");
        }
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, w: &mut JsonWriter) {
        f64::from(*self).serialize_json(w);
    }
}

macro_rules! int_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, w: &mut JsonWriter) {
                w.raw(&self.to_string());
            }
        }
    )*};
}
int_serialize!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for bool {
    fn serialize_json(&self, w: &mut JsonWriter) {
        w.raw(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, w: &mut JsonWriter) {
        w.string(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, w: &mut JsonWriter) {
        (**self).serialize_json(w);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, w: &mut JsonWriter) {
        match self {
            Some(v) => v.serialize_json(w),
            None => w.raw("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, w: &mut JsonWriter) {
        w.begin_array();
        for v in self {
            v.serialize_json(w);
        }
        w.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, w: &mut JsonWriter) {
        self.as_slice().serialize_json(w);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, w: &mut JsonWriter) {
        self.as_slice().serialize_json(w);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, w: &mut JsonWriter) {
        (**self).serialize_json(w);
    }
}

macro_rules! tuple_serialize {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, w: &mut JsonWriter) {
                w.begin_array();
                $(self.$n.serialize_json(w);)+
                w.end_array();
            }
        }
    )+};
}
tuple_serialize!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    fn to_string<T: Serialize>(v: &T, pretty: bool) -> String {
        let mut w = JsonWriter::new(pretty);
        v.serialize_json(&mut w);
        w.into_string()
    }

    #[test]
    fn scalars() {
        assert_eq!(to_string(&2.0f64, false), "2.0");
        assert_eq!(to_string(&0.125f64, false), "0.125");
        assert_eq!(to_string(&42u64, false), "42");
        assert_eq!(to_string(&true, false), "true");
        assert_eq!(to_string(&f64::NAN, false), "null");
        assert_eq!(to_string(&"a\"b", false), "\"a\\\"b\"");
    }

    #[test]
    fn arrays_compact_and_pretty() {
        assert_eq!(to_string(&vec![1.0f64, 2.0], false), "[1.0,2.0]");
        assert_eq!(to_string(&vec![1.0f64, 2.0], true), "[\n  1.0,\n  2.0\n]");
        let empty: Vec<f64> = vec![];
        assert_eq!(to_string(&empty, true), "[]");
    }

    #[test]
    fn nested_object_shape() {
        let mut w = JsonWriter::new(false);
        w.begin_object();
        w.key("a");
        1.5f64.serialize_json(&mut w);
        w.key("b");
        vec![1u32, 2].serialize_json(&mut w);
        w.end_object();
        assert_eq!(w.into_string(), "{\"a\":1.5,\"b\":[1,2]}");
    }

    #[test]
    fn float_round_trips_through_text() {
        for &x in &[1.0f64 / 3.0, 89.3e-12, -0.0, 6.02e23, 1e-300] {
            let s = to_string(&x, false);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }
}
