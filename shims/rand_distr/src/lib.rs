//! Offline shim of the `rand_distr` crate: only the pieces the pvtm
//! workspace uses (the [`Distribution`] trait and [`StandardNormal`]).

use rand::{Rng, RngCore};

/// A distribution samplable with any RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution `N(0, 1)`.
///
/// Sampled by the Marsaglia polar method; one cached variate is *not* kept
/// (each call draws fresh uniforms) so sampling is stateless and `Sync`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u: f64 = 2.0 * rng.gen::<f64>() - 1.0;
            let v: f64 = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

/// Normal distribution with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev²)`.
    ///
    /// # Errors
    ///
    /// Rejects non-finite parameters or a negative standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, &'static str> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err("invalid normal parameters");
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let g: f64 = StandardNormal.sample(rng);
        self.mean + self.std_dev * g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        const N: usize = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..N {
            let g: f64 = StandardNormal.sample(&mut rng);
            sum += g;
            sum2 += g * g;
        }
        let mean = sum / N as f64;
        let var = sum2 / N as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = Normal::new(3.0, 0.5).unwrap();
        const N: usize = 100_000;
        let mean: f64 = (0..N).map(|_| n.sample(&mut rng)).sum::<f64>() / N as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
    }
}
