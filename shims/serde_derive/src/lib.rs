//! Offline shim of `serde_derive`: hand-rolled `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` without syn/quote.
//!
//! The parser walks the raw `TokenStream` of the item: enough to handle the
//! shapes this workspace actually derives — non-generic structs with named
//! fields, and enums with unit / newtype / tuple / struct variants. The
//! generated `Serialize` impl targets the JSON-only `serde::Serialize`
//! trait from the sibling shim; `Deserialize` expands to a marker impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Variant {
    name: String,
    /// `None` for unit variants; named fields have `Some(name)` per field,
    /// tuple fields `None` per field (the outer Vec length is the arity).
    fields: Option<Vec<Option<String>>>,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Extracts the item shape from the derive input tokens.
fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // the (crate)/(super) group
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple struct `{name}` is not supported")
            }
            Some(_) => continue, // e.g. `where` clauses never appear here
            None => panic!("serde_derive shim: `{name}` has no body"),
        }
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: named_fields(body)
                .into_iter()
                .map(|f| f.expect("struct fields must be named"))
                .collect(),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    }
}

/// Field names from a brace-delimited field list. Skips attributes and
/// visibility; tracks `<...>` depth so commas inside generic types don't
/// split fields. Returns `Some(name)` per named field.
fn named_fields(body: TokenStream) -> Vec<Option<String>> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        fields.push(Some(field));
        // Consume `: Type,` tracking angle-bracket depth.
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                iter.next();
                Some(named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = 1 + g
                    .stream()
                    .into_iter()
                    .fold((0i32, 0usize), |(depth, commas), tok| match tok {
                        TokenTree::Punct(p) if p.as_char() == '<' => (depth + 1, commas),
                        TokenTree::Punct(p) if p.as_char() == '>' => (depth - 1, commas),
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            (depth, commas + 1)
                        }
                        _ => (depth, commas),
                    })
                    .1;
                iter.next();
                Some(vec![None; arity])
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
        // Consume the optional discriminant and trailing comma.
        for tok in iter.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

fn struct_impl(name: &str, fields: &[String]) -> String {
    let mut body = String::from("w.begin_object();\n");
    for f in fields {
        body.push_str(&format!(
            "w.key(\"{f}\");\nserde::Serialize::serialize_json(&self.{f}, w);\n"
        ));
    }
    body.push_str("w.end_object();");
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize_json(&self, w: &mut serde::JsonWriter) {{\n{body}\n}}\n}}"
    )
}

fn enum_impl(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            // Unit variant: "Name"
            None => arms.push_str(&format!("{name}::{vn} => w.string(\"{vn}\"),\n")),
            // Newtype variant: {"Name": value}
            Some(fields) if fields.len() == 1 && fields[0].is_none() => {
                arms.push_str(&format!(
                    "{name}::{vn}(v0) => {{\nw.begin_object();\nw.key(\"{vn}\");\n\
                     serde::Serialize::serialize_json(v0, w);\nw.end_object();\n}}\n"
                ));
            }
            // Tuple variant: {"Name": [v0, v1, ...]}
            Some(fields) if fields.first().is_some_and(Option::is_none) => {
                let binds: Vec<String> = (0..fields.len()).map(|i| format!("v{i}")).collect();
                let mut body = String::from("w.begin_array();\n");
                for b in &binds {
                    body.push_str(&format!("serde::Serialize::serialize_json({b}, w);\n"));
                }
                body.push_str("w.end_array();");
                arms.push_str(&format!(
                    "{name}::{vn}({}) => {{\nw.begin_object();\nw.key(\"{vn}\");\n{body}\nw.end_object();\n}}\n",
                    binds.join(", ")
                ));
            }
            // Struct variant: {"Name": {"field": value, ...}}
            Some(fields) => {
                let names: Vec<&String> =
                    fields.iter().map(|f| f.as_ref().expect("named")).collect();
                let mut body = String::from("w.begin_object();\n");
                for f in &names {
                    body.push_str(&format!(
                        "w.key(\"{f}\");\nserde::Serialize::serialize_json({f}, w);\n"
                    ));
                }
                body.push_str("w.end_object();");
                let binds = names
                    .iter()
                    .map(|f| f.as_str())
                    .collect::<Vec<_>>()
                    .join(", ");
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => {{\nw.begin_object();\nw.key(\"{vn}\");\n{body}\nw.end_object();\n}}\n"
                ));
            }
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize_json(&self, w: &mut serde::JsonWriter) {{\nmatch self {{\n{arms}}}\n}}\n}}"
    )
}

/// Derives the shim's JSON-only `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let generated = match parse_item(input) {
        Item::Struct { name, fields } => struct_impl(&name, &fields),
        Item::Enum { name, variants } => enum_impl(&name, &variants),
    };
    generated
        .parse()
        .expect("serde_derive shim generated invalid Rust")
}

/// Derives the shim's marker `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = match parse_item(input) {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("impl serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive shim generated invalid Rust")
}
