//! Offline shim of the `rayon` data-parallelism API used by the pvtm
//! workspace.
//!
//! Unlike a sequential stub, this shim really fans work out across OS
//! threads (`std::thread::scope` with an atomic work-stealing index), which
//! is what the Monte-Carlo loops in `pvtm-stats`/`pvtm` need to saturate
//! the machine. Semantics differ from upstream rayon in one deliberate
//! way: iterators are *eager* — each adapter materializes its results —
//! which is fine for the workspace's usage (one heavy `map` followed by a
//! cheap reduction).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads used for parallel maps.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map with dynamic load balancing.
fn par_map_vec<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let x = slots[i]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("slot taken twice");
                let r = f(x);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a slot")
        })
        .collect()
}

/// Order-preserving parallel map with per-worker state: `init` runs once
/// per worker thread and its value is threaded (mutably) through every
/// element that worker processes.
fn par_map_vec_init<T: Send, S, R: Send>(
    items: Vec<T>,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, T) -> R + Sync,
) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        let mut state = init();
        return items.into_iter().map(|x| f(&mut state, x)).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let x = slots[i]
                        .lock()
                        .expect("input slot poisoned")
                        .take()
                        .expect("slot taken twice");
                    let r = f(&mut state, x);
                    *results[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker skipped a slot")
        })
        .collect()
}

/// An eager "parallel iterator": adapters with a parallel body (`map`,
/// `for_each`) run on worker threads; cheap adapters run inline.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every element in parallel, preserving order.
    pub fn map<R: Send>(self, f: impl Fn(T) -> R + Sync) -> ParIter<R> {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    /// [`Self::map`] with per-worker state: `init` runs once per worker
    /// thread (rayon proper runs it once per split — same contract: the
    /// state is reused across many elements, never shared across threads).
    /// The hot-path use case is a stateful evaluator, e.g. compiled
    /// circuit templates carrying warm-started solver state.
    pub fn map_init<S, R: Send>(
        self,
        init: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, T) -> R + Sync,
    ) -> ParIter<R> {
        ParIter {
            items: par_map_vec_init(self.items, init, f),
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each(self, f: impl Fn(T) + Sync) {
        let _ = par_map_vec(self.items, f);
    }

    /// Pairs every element with its index.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Keeps elements matching the predicate.
    pub fn filter(self, f: impl Fn(&T) -> bool + Sync) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().filter(|x| f(x)).collect(),
        }
    }

    /// Parallel filter-map.
    pub fn filter_map<R: Send>(self, f: impl Fn(T) -> Option<R> + Sync) -> ParIter<R> {
        ParIter {
            items: par_map_vec(self.items, f).into_iter().flatten().collect(),
        }
    }

    /// Collects into any `FromIterator` container (order preserved).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the elements.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of elements.
    pub fn count(self) -> usize {
        self.items.len()
    }

    /// Folds the (already computed) elements with rayon's
    /// `reduce(identity, op)` signature.
    pub fn reduce(self, identity: impl Fn() -> T, op: impl Fn(T, T) -> T) -> T {
        self.items.into_iter().fold(identity(), op)
    }
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Builds the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for core::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
range_into_par!(usize, u64, u32, i64, i32);

/// `par_iter()` on slices and `Vec`s (yields references).
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;
    /// Builds the parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn map_runs_on_multiple_threads() {
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        let ids = Mutex::new(BTreeSet::new());
        let _: Vec<()> = (0..256usize)
            .into_par_iter()
            .map(|_| {
                let id = format!("{:?}", std::thread::current().id());
                ids.lock().unwrap().insert(id);
                std::thread::sleep(std::time::Duration::from_micros(200));
            })
            .collect();
        if super::current_num_threads() > 1 {
            assert!(ids.lock().unwrap().len() > 1, "work never left one thread");
        }
    }

    #[test]
    fn map_init_matches_map_and_reuses_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let out: Vec<u64> = (0u64..500)
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u64
                },
                |acc, x| {
                    *acc += 1;
                    x * x
                },
            )
            .collect();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
        // One init per worker, not per element.
        assert!(inits.load(Ordering::Relaxed) <= super::current_num_threads());
    }

    #[test]
    fn par_iter_references() {
        let data = vec![1.0f64, 2.0, 3.0];
        let s: f64 = data.par_iter().map(|&x| x * 2.0).sum();
        assert_eq!(s, 12.0);
    }

    #[test]
    fn reduce_matches_fold() {
        let total = (1u64..=100)
            .collect::<Vec<_>>()
            .into_par_iter()
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn collect_into_result_short_circuits_to_err() {
        let r: Result<Vec<u32>, &'static str> = (0u32..10)
            .into_par_iter()
            .map(|x| if x == 7 { Err("boom") } else { Ok(x) })
            .collect();
        assert_eq!(r, Err("boom"));
    }
}
