//! Offline shim of the `rand` crate: the API surface the pvtm workspace
//! uses, implemented on a xoshiro256++ generator seeded via SplitMix64.
//!
//! The container this workspace builds in has no crates.io access, so the
//! external `rand` crate cannot be fetched. This shim keeps the public call
//! sites (`Rng::gen`, `gen_range`, `gen_bool`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`) source-compatible. Streams differ from upstream `rand`;
//! everything in-repo treats the generator as an opaque seeded stream, so
//! only reproducibility *within* this workspace matters.

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG (the shim's analogue of the
/// `Standard` distribution).
pub trait UniformSample {
    /// Draws one uniform value.
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits onto [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for u64 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for bool {
    fn uniform_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8);

macro_rules! sint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
sint_range!(isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::uniform_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        let u = f64::uniform_sample(rng);
        lo + u * (hi - lo)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of the inferred type.
    fn gen<T: UniformSample>(&mut self) -> T {
        T::uniform_sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS-provided entropy (here: a time-derived
    /// seed; this shim has no OS entropy source).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// state expanded from the seed with SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        const N: usize = 100_000;
        for _ in 0..N {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / N as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
