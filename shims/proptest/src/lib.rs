//! Offline shim of `proptest`: the `proptest!` macro, range/tuple/collection
//! strategies, and `prop_assert!`-style assertions — enough for the
//! workspace's property tests.
//!
//! No shrinking: a failing case panics with the generated inputs via the
//! assertion message. Case generation is deterministic per test name, so
//! failures reproduce.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from the test name so failures reproduce.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // 53-bit grid over [lo, hi]; endpoint-inclusive up to rounding.
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty integer range");
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (*self.start() as i128 + v) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy wrapper produced by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.max > self.min, "empty size range");
        self.min + (rng.next_u64() as usize) % (self.max - self.min)
    }
}

/// Collection strategies (`prop::collection::vec` etc.).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a size in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a size in `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy with the given element strategy and size range.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set; retry a bounded number of times to
            // reach the requested size, then accept what we have (still
            // non-empty when min >= 1 because the first insert always lands).
            let mut attempts = 0usize;
            while set.len() < n && attempts < 16 * (n + 4) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $name:ident; $($arg:ident in $strat:expr),+ ; $body:block) => {{
        let cfg: $crate::ProptestConfig = $cfg;
        let mut rng = $crate::TestRng::deterministic(stringify!($name));
        for case in 0..cfg.cases {
            $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
            let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                $body
                Ok(())
            })();
            if let Err(e) = result {
                let mut inputs = String::new();
                $(
                    inputs.push_str(&format!("{} = {:?}; ", stringify!($arg), &$arg));
                )+
                panic!(
                    "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                    stringify!($name),
                    case,
                    cfg.cases,
                    e,
                    inputs
                );
            }
        }
    }};
}

/// Declares property tests, mirroring proptest's macro shape.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_body!($cfg; $name; $($arg in $strat),+ ; $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_body!(
                    $crate::ProptestConfig::default(); $name; $($arg in $strat),+ ; $body
                );
            }
        )*
    };
}

/// The usual glob import; `prop::` paths resolve through the crate alias.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn floats_stay_in_range(x in 0.25f64..0.75, y in 1e-3f64..=1.0) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((1e-3..=1.0).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn collections_obey_sizes(
            v in prop::collection::vec(10.0f64..20.0, 2..8),
            s in prop::collection::btree_set((0usize..16, any::<bool>()), 1..10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(!s.is_empty() && s.len() < 10);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x too small: {x}");
            }
        }
        always_fails();
    }
}
