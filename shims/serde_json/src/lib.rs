//! Offline shim of `serde_json`: the writer half only, backed by the
//! JSON-only `serde::Serialize` trait from the sibling shim.

use serde::{JsonWriter, Serialize};

/// Error from the writer APIs (only I/O can fail; formatting is infallible).
#[derive(Debug)]
pub struct Error {
    inner: std::io::Error,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim: {}", self.inner)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.inner)
    }
}

impl From<std::io::Error> for Error {
    fn from(inner: std::io::Error) -> Self {
        Self { inner }
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut w = JsonWriter::new(false);
    value.serialize_json(&mut w);
    Ok(w.into_string())
}

/// Serializes `value` as pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut w = JsonWriter::new(true);
    value.serialize_json(&mut w);
    Ok(w.into_string())
}

/// Writes `value` as compact JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Writes `value` as pretty-printed JSON into `writer`.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_matches_string() {
        let v = vec![1.0f64, 2.0];
        let mut buf = Vec::new();
        to_writer_pretty(&mut buf, &v).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            to_string_pretty(&v).unwrap()
        );
    }

    #[test]
    fn pretty_keeps_trailing_zero() {
        assert_eq!(to_string_pretty(&2.0f64).unwrap(), "2.0");
    }
}
