//! Cross-validation between independent estimation paths: the fast
//! analytic/linearized models against brute-force simulation of the same
//! quantities.

use pvtm_device::Technology;
use pvtm_sram::{
    AnalysisConfig, ArrayOrganization, CellAnalysis, CellLeakageModel, CellSizing, Conditions,
    FailureAnalyzer, SramCell,
};
use pvtm_stats::special::norm_cdf;
use pvtm_stats::Summary;
use rand::Rng;

fn tech() -> Technology {
    Technology::predictive_70nm()
}

#[test]
fn linearized_failure_probability_matches_importance_sampled_mc() {
    // A corner with a failure probability large enough to resolve.
    let t = tech();
    let fa = FailureAnalyzer::new(&t, CellSizing::default_for(&t), AnalysisConfig::default());
    let cond = Conditions::standby(&t, 0.5);
    let corner = -0.12;
    let lin = fa.failure_probs(corner, &cond).unwrap().overall();
    let mc = fa.failure_prob_mc(corner, &cond, 1500, 11).unwrap();
    // Within a factor of three (linearization + union-bound error), with
    // MC statistical slack.
    let lo = lin / 3.0 - 3.0 * mc.std_err;
    let hi = lin * 3.0 + 3.0 * mc.std_err;
    assert!(
        mc.value >= lo && mc.value <= hi,
        "MC {:.3e} ± {:.1e} vs linearized {lin:.3e}",
        mc.value,
        mc.std_err
    );
}

#[test]
fn access_time_estimate_matches_transient_simulation() {
    let t = tech();
    let analysis = CellAnalysis::new(&t, AnalysisConfig::default());
    let cond = Conditions::active(&t);
    for shift in [-0.05, 0.0, 0.05] {
        let cell = SramCell::nominal(&t).with_inter_die_shift(shift);
        let est = analysis.access_time(&cell, &cond).unwrap();
        let tran = analysis.access_time_transient(&cell, &cond).unwrap();
        let ratio = tran / est;
        assert!(
            (0.4..2.5).contains(&ratio),
            "shift {shift}: estimate {est:.3e} vs transient {tran:.3e}"
        );
    }
}

#[test]
fn array_leakage_follows_the_clt_prediction() {
    // Paper Eq. (2): mean scales with N, sigma with sqrt(N); and the sum
    // is Gaussian by the KS test.
    let t = tech();
    let model = CellLeakageModel::new(&t, CellSizing::default_for(&t));
    let cond = Conditions::active(&t);
    let mut rng = pvtm_stats::rng::substream(55, 0);
    let cell_stats = model.population_stats(0.0, &cond, 6000, &mut rng);

    let n = 1024usize;
    let arrays: Vec<f64> = (0..250)
        .map(|_| {
            (0..n)
                .map(|_| model.sample_cell(0.0, &cond, &mut rng))
                .sum::<f64>()
        })
        .collect();
    let s = Summary::from_slice(&arrays);
    let mean_pred = n as f64 * cell_stats.mean;
    let sd_pred = (n as f64).sqrt() * cell_stats.std_dev;
    assert!(
        (s.mean() / mean_pred - 1.0).abs() < 0.15,
        "mean {:.3e} vs predicted {mean_pred:.3e}",
        s.mean()
    );
    assert!(
        (s.std_dev() / sd_pred - 1.0).abs() < 0.35,
        "sd {:.3e} vs predicted {sd_pred:.3e}",
        s.std_dev()
    );
    let ks = pvtm_stats::ks::ks_test(&arrays, |x| norm_cdf((x - s.mean()) / s.std_dev()));
    assert!(
        ks.accepts(0.001),
        "array sums not Gaussian: p = {}",
        ks.p_value
    );
}

#[test]
fn binomial_redundancy_model_matches_direct_simulation() {
    // The analytic memory-failure probability against brute-force
    // sampling of faulty columns.
    let org = ArrayOrganization::new(64, 128, 4);
    let p_cell = 4e-4;
    let analytic = org.memory_failure_prob(p_cell);

    let mut rng = pvtm_stats::rng::substream(66, 0);
    let trials = 4000;
    let mut memory_failures = 0u32;
    for _ in 0..trials {
        let mut faulty_cols = 0;
        for _ in 0..org.cols {
            let mut col_faulty = false;
            for _ in 0..org.rows {
                if rng.gen::<f64>() < p_cell {
                    col_faulty = true;
                    break;
                }
            }
            if col_faulty {
                faulty_cols += 1;
            }
        }
        if faulty_cols > org.redundant_cols {
            memory_failures += 1;
        }
    }
    let empirical = memory_failures as f64 / trials as f64;
    let se = (analytic * (1.0 - analytic) / trials as f64).sqrt();
    assert!(
        (empirical - analytic).abs() < 4.0 * se + 0.01,
        "empirical {empirical:.4} vs analytic {analytic:.4}"
    );
}

#[test]
fn hold_model_probability_matches_direct_cell_sampling() {
    // The mixed exponential-linear hold estimator against Monte Carlo on
    // the same linear models (consistency of the quadrature).
    let t = tech();
    let fa = FailureAnalyzer::new(&t, CellSizing::default_for(&t), AnalysisConfig::default());
    let cond = Conditions::standby(&t, 0.70);
    let model = fa.linearize_hold(0.0, &cond).unwrap();
    let analytic = model.failure_prob();
    assert!(analytic > 1e-7, "pick a corner with observable failures");

    let mut rng = pvtm_stats::rng::substream(77, 0);
    let samples = 300_000;
    let mut fails = 0u64;
    for _ in 0..samples {
        let z: [f64; 6] = std::array::from_fn(|_| {
            use rand_distr::Distribution;
            rand_distr::StandardNormal.sample(&mut rng)
        });
        if model.fails_at(&z) {
            fails += 1;
        }
    }
    let empirical = fails as f64 / samples as f64;
    let se = (analytic * (1.0 - analytic) / samples as f64)
        .sqrt()
        .max(1e-9);
    assert!(
        (empirical - analytic).abs() < 5.0 * se + 0.1 * analytic,
        "empirical {empirical:.3e} vs analytic {analytic:.3e}"
    );
}
