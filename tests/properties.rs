//! Property-based tests (proptest) over the cross-crate invariants.

use proptest::prelude::*;

use pvtm_bist::{BistController, Fault, FaultKind, MarchTest, MemoryModel};
use pvtm_circuit::{dc, DcOptions, Netlist};
use pvtm_device::{Bias, Mosfet, Technology};
use pvtm_sram::ArrayOrganization;
use pvtm_stats::special::{binomial_cdf, binomial_sf, norm_cdf, norm_ppf};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Φ and Φ⁻¹ are inverses over the whole open unit interval.
    #[test]
    fn normal_cdf_ppf_round_trip(p in 1e-10f64..=0.9999999) {
        let x = norm_ppf(p);
        prop_assert!((norm_cdf(x) - p).abs() < 1e-9 * p.max(1e-3));
    }

    /// Binomial CDF and survival always complement to 1.
    #[test]
    fn binomial_complement(n in 1u64..500, k_frac in 0.0f64..1.0, p in 0.0f64..=1.0) {
        let k = (k_frac * n as f64) as u64;
        let c = binomial_cdf(n, k, p);
        let s = binomial_sf(n, k, p);
        prop_assert!((c + s - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
    }

    /// Device current is monotone in gate voltage at any drain/body bias.
    #[test]
    fn ids_monotone_in_vgs(
        vd in 0.05f64..1.0,
        vb in -0.5f64..0.4,
        dvt in -0.1f64..0.1,
    ) {
        let t = Technology::predictive_70nm();
        let n = Mosfet::nmos(&t, 200e-9, t.lmin()).with_delta_vt(dvt);
        let mut prev = -1.0;
        for k in 0..=10 {
            let vg = k as f64 * 0.1;
            let i = n.ids(Bias::new(vg, vd, 0.0, vb), 300.0);
            prop_assert!(i >= prev - 1e-18, "non-monotone at vg={vg}");
            prev = i;
        }
    }

    /// Drain/source exchange exactly flips the current sign.
    #[test]
    fn ids_antisymmetric(
        vg in 0.0f64..1.0,
        va in 0.0f64..1.0,
        vb_node in 0.0f64..1.0,
    ) {
        let t = Technology::predictive_70nm();
        let n = Mosfet::nmos(&t, 140e-9, t.lmin());
        let fwd = n.ids(Bias::new(vg, va, vb_node, 0.0), 300.0);
        let rev = n.ids(Bias::new(vg, vb_node, va, 0.0), 300.0);
        prop_assert!((fwd + rev).abs() <= 1e-10 * fwd.abs().max(1e-15));
    }

    /// Any converged DC solution of a random resistor ladder satisfies the
    /// voltage-divider law at every internal node.
    #[test]
    fn dc_solver_resistor_ladder(
        resistances in prop::collection::vec(10.0f64..1e6, 2..8),
        v_src in 0.1f64..10.0,
    ) {
        let mut ckt = Netlist::new();
        let top = ckt.node("n0");
        ckt.vsource("V", top, Netlist::GROUND, v_src);
        let mut prev = top;
        for (i, &r) in resistances.iter().enumerate() {
            let node = ckt.node(&format!("n{}", i + 1));
            ckt.resistor(&format!("R{i}"), prev, node, r);
            prev = node;
        }
        // Tie the ladder end to ground so current flows.
        ckt.resistor("Rend", prev, Netlist::GROUND, 1e3);
        let sol = dc::solve(&ckt, &DcOptions::default()).expect("ladder must solve");
        // Current through the chain is v / total R; check each drop. The
        // solver's error budget is its KCL residual tolerance (1e-10 A)
        // times the circuit impedance, plus the residual Gmin loading.
        let total: f64 = resistances.iter().sum::<f64>() + 1e3;
        let tol = 5.0 * (1e-10 * total + 1e-12 * total * v_src + 1e-9 * v_src);
        let i_chain = v_src / total;
        let mut v_expected = v_src;
        for (i, &r) in resistances.iter().enumerate() {
            v_expected -= i_chain * r;
            let node = ckt.find_node(&format!("n{}", i + 1)).expect("node exists");
            prop_assert!(
                (sol.voltage(node) - v_expected).abs() < tol,
                "node {} off: {} vs {}", i + 1, sol.voltage(node), v_expected
            );
        }
    }

    /// March C- detects every randomly placed stuck-at fault, and the BIST
    /// column count matches the distinct faulty columns.
    #[test]
    fn march_detects_all_stuck_at(
        faults in prop::collection::btree_set((0usize..16, 0usize..16, any::<bool>()), 1..10)
    ) {
        let mut mem = MemoryModel::new(16, 16);
        let mut cols = std::collections::BTreeSet::new();
        let mut cells = std::collections::BTreeSet::new();
        for &(r, c, v) in &faults {
            if cells.insert((r, c)) {
                mem.inject(Fault { row: r, col: c, kind: FaultKind::StuckAt(v) });
                cols.insert(c);
            }
        }
        let report = BistController::new()
            .run(&MarchTest::march_c_minus(), &mut mem)
            .unwrap();
        prop_assert_eq!(report.faulty_columns(), cols.len());
        for &(r, c) in &cells {
            prop_assert!(
                report.march_result().failures.iter().any(|f| f.row == r && f.col == c),
                "stuck-at at ({r},{c}) missed"
            );
        }
    }

    /// Memory failure probability is monotone in the cell failure
    /// probability and anti-monotone in redundancy.
    #[test]
    fn redundancy_model_monotonicity(
        p1 in 1e-8f64..1e-3,
        factor in 1.0f64..100.0,
        spares in 0usize..20,
    ) {
        let org_a = ArrayOrganization::new(128, 256, spares);
        let org_b = ArrayOrganization::new(128, 256, spares + 4);
        let p2 = (p1 * factor).min(1.0);
        prop_assert!(org_a.memory_failure_prob(p2) >= org_a.memory_failure_prob(p1) - 1e-12);
        prop_assert!(org_b.memory_failure_prob(p1) <= org_a.memory_failure_prob(p1) + 1e-12);
    }

    /// The retention-fault model is monotone in the source bias: raising
    /// VSB can only expose more faulty columns.
    #[test]
    fn retention_monotone_in_vsb(
        thresholds in prop::collection::vec((0usize..8, 0usize..8, 0.1f64..0.7), 1..12)
    ) {
        let build = || {
            let mut mem = MemoryModel::new(8, 8);
            let mut seen = std::collections::BTreeSet::new();
            for &(r, c, t) in &thresholds {
                if seen.insert((r, c)) {
                    mem.inject(Fault { row: r, col: c, kind: FaultKind::Retention { min_vsb: t } });
                }
            }
            mem
        };
        let bist = BistController::new();
        let march = MarchTest::march_c_minus();
        let mut prev = 0usize;
        for k in 0..8 {
            let vsb = k as f64 * 0.1;
            let mut mem = build();
            mem.set_vsb(vsb);
            let faulty = bist.run(&march, &mut mem).unwrap().faulty_columns();
            prop_assert!(faulty >= prev, "vsb {vsb}: {faulty} < {prev}");
            prev = faulty;
        }
    }
}
