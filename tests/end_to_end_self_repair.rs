//! End-to-end integration of the self-repairing memory: device models →
//! circuit solver → failure analysis → monitor binning → body bias →
//! yield, asserting the paper's §III claims hold across the whole stack.

use pvtm::interp::linspace;
use pvtm::monitor::VtRegion;
use pvtm::self_repair::{Policy, SelfRepairConfig, SelfRepairingMemory};

fn memory() -> SelfRepairingMemory {
    let mut cfg = SelfRepairConfig::default_70nm(64, 102);
    cfg.leak_samples = 200;
    SelfRepairingMemory::new(cfg)
}

#[test]
fn monitor_binning_matches_corner_ground_truth() {
    let mem = memory();
    // Deep into each region the binning must be unambiguous.
    assert_eq!(mem.classify(-0.15), VtRegion::LowVt);
    assert_eq!(mem.classify(-0.10), VtRegion::LowVt);
    assert_eq!(mem.classify(0.0), VtRegion::Nominal);
    assert_eq!(mem.classify(0.10), VtRegion::HighVt);
    assert_eq!(mem.classify(0.15), VtRegion::HighVt);
}

#[test]
fn repair_policy_is_never_materially_worse_anywhere() {
    let mem = memory();
    let resp = mem.response(&linspace(-0.25, 0.25, 9)).expect("response");
    for &corner in &[-0.22, -0.15, -0.08, 0.0, 0.08, 0.15, 0.22] {
        let zbb = resp.p_cell(corner, Policy::Zbb);
        let abb = resp.p_cell(corner, Policy::SelfRepair);
        // Allow interpolation slack right at the region boundaries.
        assert!(
            abb <= zbb * 3.0 + 1e-12,
            "corner {corner}: repair {abb:.3e} vs zbb {zbb:.3e}"
        );
    }
}

#[test]
fn paper_claim_yield_improvement_band() {
    // The paper claims 8-25 % parametric-yield improvement; our substrate
    // is not their testbed, so accept a generous band around it but
    // insist the effect is large and positive at high variation.
    let mem = memory();
    let resp = mem.response(&linspace(-0.30, 0.30, 11)).expect("response");
    let zbb = resp.parametric_yield(0.15, Policy::Zbb);
    let rep = resp.parametric_yield(0.15, Policy::SelfRepair);
    let gain_pp = 100.0 * (rep - zbb);
    assert!(
        (5.0..60.0).contains(&gain_pp),
        "yield gain {gain_pp:.1} pp out of plausible band (zbb {zbb:.3}, rep {rep:.3})"
    );
}

#[test]
fn leakage_spread_is_compressed_by_repair() {
    let mem = memory();
    let resp = mem.response(&linspace(-0.25, 0.25, 9)).expect("response");
    // Spread proxy: array leakage ratio between the ±0.15 corners.
    let spread = |p: Policy| resp.array_leak_mean(-0.15, p) / resp.array_leak_mean(0.15, p);
    let zbb = spread(Policy::Zbb);
    let rep = spread(Policy::SelfRepair);
    assert!(
        rep < 0.7 * zbb,
        "self-repair must compress the spread: {rep:.1} vs {zbb:.1}"
    );
}

#[test]
fn body_bias_levels_respect_generator_bounds() {
    let mem = memory();
    let resp = mem.response(&linspace(-0.25, 0.25, 9)).expect("response");
    let gen = mem.config().generator;
    for p in resp.points() {
        assert!(p.bias >= gen.rbb() && p.bias <= gen.fbb());
        match p.region {
            VtRegion::LowVt => assert_eq!(p.bias, gen.rbb()),
            VtRegion::Nominal => assert_eq!(p.bias, 0.0),
            VtRegion::HighVt => assert_eq!(p.bias, gen.fbb()),
        }
    }
}
