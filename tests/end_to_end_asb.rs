//! End-to-end integration of the self-adaptive source-bias scheme:
//! hold models → retention-fault injection → BIST March calibration →
//! standby power, asserting the paper's §IV claims across the stack.

use pvtm::adaptive::{AsbConfig, AsbEngine, StandbyLeakageGrid};
use pvtm::interp::linspace;
use pvtm::source_bias::{HoldModelGrid, SourceBiasAnalyzer};
use pvtm_bist::{Dac, MarchTest};
use pvtm_device::Technology;
use pvtm_sram::{AnalysisConfig, ArrayOrganization, CellSizing};

fn engine() -> (AsbEngine, SourceBiasAnalyzer) {
    let tech = Technology::predictive_70nm();
    let sizing = CellSizing::default_for(&tech);
    let analyzer = SourceBiasAnalyzer::new(&tech, sizing, AnalysisConfig::default());
    let corners = linspace(-0.12, 0.12, 4);
    let vsbs = linspace(0.30, 0.74, 8);
    let hold = HoldModelGrid::build(&analyzer, corners.clone(), vsbs.clone()).expect("grid");
    let leak = StandbyLeakageGrid::build(&tech, sizing, corners, vsbs, 120);
    let cfg = AsbConfig {
        org: ArrayOrganization::new(64, 64, 3),
        dac: Dac::new(5, 0.74),
        march: MarchTest::march_c_minus(),
        use_guard: 0.01,
        backoff_codes: 1,
    };
    (AsbEngine::new(hold, leak, cfg), analyzer)
}

#[test]
fn calibration_never_exceeds_the_redundancy_budget() {
    let (engine, _) = engine();
    let spares = engine.config().org.redundant_cols;
    for (i, corner) in [-0.10, -0.05, 0.0, 0.05, 0.10].iter().enumerate() {
        let mut rng = pvtm_stats::rng::substream(100, i as u64);
        let mut die = engine.build_die(*corner, &mut rng);
        let outcome = engine.calibrate(&mut die);
        assert!(
            engine.faulty_columns_at(&mut die, outcome.vsb) <= spares,
            "corner {corner}: budget violated at VSB(adaptive) = {}",
            outcome.vsb
        );
    }
}

#[test]
fn adaptive_bias_tracks_the_analytic_ceiling_shape() {
    // The BIST-chosen VSB across corners must reproduce the fig-6 shape:
    // highest near nominal, lower at both tails.
    let (engine, _) = engine();
    let median_vsb = |corner: f64| -> f64 {
        let mut v: Vec<f64> = (0..5)
            .map(|k| {
                let mut rng = pvtm_stats::rng::substream(200, (corner * 1e3) as i64 as u64 ^ k);
                let mut die = engine.build_die(corner, &mut rng);
                engine.calibrate(&mut die).vsb
            })
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[2]
    };
    let low = median_vsb(-0.12);
    let nom = median_vsb(0.0);
    let high = median_vsb(0.12);
    assert!(
        nom >= low && nom >= high,
        "adaptive ceiling shape violated: {low:.3} / {nom:.3} / {high:.3}"
    );
    assert!(high < nom, "high-Vt corner must force a lower bias");
}

#[test]
fn standby_power_ordering_zero_vs_adaptive() {
    let (engine, analyzer) = engine();
    let p_target = pvtm::experiments::cell_target_for_memory(&engine.config().org, 1e-3);
    let vsb_opt = analyzer.max_vsb(0.0, p_target).expect("vsb_opt");
    let pop = engine.run_population(12, 0.06, vsb_opt, 77);
    for die in &pop {
        assert!(die.power_adaptive <= die.power_zero * 1.0001);
        assert!(die.power_opt <= die.power_zero * 1.0001);
        assert!(die.power_zero > 0.0);
    }
    // Aggregate saving must be substantial (the point of the scheme).
    let total_zero: f64 = pop.iter().map(|d| d.power_zero).sum();
    let total_adp: f64 = pop.iter().map(|d| d.power_adaptive).sum();
    assert!(
        total_adp < 0.7 * total_zero,
        "adaptive bias must cut standby power: {total_adp:.3e} vs {total_zero:.3e}"
    );
}

#[test]
fn adaptive_hold_survival_beats_fixed_opt() {
    let (engine, analyzer) = engine();
    let p_target = pvtm::experiments::cell_target_for_memory(&engine.config().org, 1e-3);
    let vsb_opt = analyzer.max_vsb(0.0, p_target).expect("vsb_opt");
    let spares = engine.config().org.redundant_cols;
    let pop = engine.run_population(16, 0.08, vsb_opt, 99);
    let fail = |f: &dyn Fn(&pvtm::adaptive::DieEvaluation) -> usize| -> usize {
        pop.iter().filter(|d| f(d) > spares).count()
    };
    let fail_opt = fail(&|d| d.faulty_cols_opt);
    let fail_adp = fail(&|d| d.faulty_cols_adaptive);
    assert!(
        fail_adp <= fail_opt,
        "adaptive {fail_adp} hold-failing dies vs opt {fail_opt}"
    );
}

#[test]
fn retention_faults_only_fire_above_their_threshold() {
    // Cross-crate consistency: the fault thresholds injected from the hold
    // models must behave monotonically inside the BIST memory.
    let (engine, _) = engine();
    let mut rng = pvtm_stats::rng::substream(300, 0);
    let mut die = engine.build_die(-0.08, &mut rng);
    let f_low = engine.faulty_columns_at(&mut die, 0.30);
    let f_mid = engine.faulty_columns_at(&mut die, 0.55);
    let f_high = engine.faulty_columns_at(&mut die, 0.74);
    assert!(
        f_low <= f_mid && f_mid <= f_high,
        "{f_low} / {f_mid} / {f_high}"
    );
    assert!(
        f_high > 0,
        "a low-Vt die must have retention faults at deep bias"
    );
}
