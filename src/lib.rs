//! Facade crate for the SOCC 2006 reproduction workspace.
//!
//! Re-exports every subsystem crate so the root-level `examples/` and
//! `tests/` can reach the whole stack through one dependency. Library users
//! should depend on the individual crates (most commonly [`pvtm`]) instead.

pub use pvtm;
pub use pvtm_bist;
pub use pvtm_circuit;
pub use pvtm_device;
pub use pvtm_sram;
pub use pvtm_stats;
